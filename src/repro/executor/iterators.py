"""Volcano-style iterators: every operator supports open / next / close.

The Volcano execution engine popularized the demand-driven iterator
protocol ("operators consuming and producing bulk types", with "data
passed (or pipelined) between them").  Each iterator here:

* ``open()``   — prepares state, opens inputs;
* ``next()``   — returns the next row (a ``dict``) or ``None`` at end;
* ``close()``  — releases state, closes inputs.

Rows are dictionaries keyed by (qualified) column names.  Iterators are
also Python iterables for convenience; ``list(iterator)`` drains a plan.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.algebra.predicates import Predicate
from repro.errors import ExecutionError
from repro.executor.runtime import ExecutionContext

__all__ = [
    "Row",
    "VolcanoIterator",
    "FileScan",
    "Filter",
    "FilterScan",
    "Materialize",
    "IntermediateScan",
    "Project",
    "Sort",
    "MergeJoin",
    "HashJoin",
    "NestedLoopsJoin",
    "HashAggregate",
    "SortedAggregate",
    "UnionAll",
    "HashDistinct",
    "MergeIntersect",
    "MergeExcept",
    "Exchange",
]

Row = Dict[str, object]


class VolcanoIterator:
    """Base class implementing the open/next/close protocol.

    ``node_id`` is the stable id of the plan node this iterator
    implements (the node's pre-order position, assigned by the compiler
    in instrumented mode; None otherwise).  Every iterator counts the
    rows it returns; on close, instrumented iterators report the count
    into ``ExecutionStats.node_rows`` under their node id, so the
    execution-feedback subsystem can join observed against estimated
    cardinality per operator.
    """

    def __init__(self, context: ExecutionContext):
        self.context = context
        self.node_id: Optional[int] = None
        self._opened = False
        self._rows_out = 0

    # -- protocol ---------------------------------------------------------

    def open(self) -> None:
        """Prepare state and open inputs; called once before next()."""
        if self._opened:
            raise ExecutionError(f"{type(self).__name__} opened twice")
        self._opened = True
        self.context.stats.operators_opened += 1
        self._do_open()

    def next(self) -> Optional[Row]:
        """The next row, or None when the input is exhausted."""
        if not self._opened:
            raise ExecutionError(f"{type(self).__name__} not open")
        row = self._do_next()
        if row is not None:
            self._rows_out += 1
        return row

    def close(self) -> None:
        """Release state and close inputs; safe to call when not open."""
        if not self._opened:
            return
        self._opened = False
        stats = self.context.stats
        stats.operators_closed += 1
        if self.node_id is not None:
            stats.node_rows[self.node_id] = (
                stats.node_rows.get(self.node_id, 0) + self._rows_out
            )
            scanned = self._scan_count()
            if scanned is not None:
                stats.node_scan_rows[self.node_id] = (
                    stats.node_scan_rows.get(self.node_id, 0) + scanned
                )
                stats.node_scan_complete[self.node_id] = (
                    stats.node_scan_complete.get(self.node_id, True)
                    and self._scan_exhausted()
                )
        self._do_close()

    # -- instrumentation hooks --------------------------------------------

    def _scan_count(self) -> Optional[int]:
        """Rows this operator read from a stored table, if it is a scan."""
        return None

    def _scan_exhausted(self) -> bool:
        """Whether the scan read its table to the end (see _scan_count)."""
        return False

    # -- subclass hooks -----------------------------------------------------

    def _do_open(self) -> None:
        raise NotImplementedError

    def _do_next(self) -> Optional[Row]:
        raise NotImplementedError

    def _do_close(self) -> None:
        pass

    @property
    def output_columns(self) -> Tuple[str, ...]:
        """Column names this iterator emits."""
        raise NotImplementedError

    # -- conveniences ---------------------------------------------------------

    def __iter__(self):
        self.open()
        try:
            while True:
                row = self.next()
                if row is None:
                    return
                yield row
        finally:
            self.close()

    def drain(self) -> List[Row]:
        """Open, exhaust, and close; returns all rows."""
        return list(self)


class _UnaryIterator(VolcanoIterator):
    def __init__(self, context, source: VolcanoIterator):
        super().__init__(context)
        self.source = source

    def _do_open(self) -> None:
        self.source.open()

    def _do_close(self) -> None:
        self.source.close()

    @property
    def output_columns(self) -> Tuple[str, ...]:
        return self.source.output_columns


class FileScan(VolcanoIterator):
    """Scan a stored table, counting page reads honestly."""

    def __init__(self, context, table: str, alias: Optional[str] = None):
        super().__init__(context)
        self.table = table
        self.alias = alias
        entry = context.catalog.table(table)
        if not entry.has_rows:
            raise ExecutionError(f"table {table!r} has no stored rows")
        self._entry = entry
        self._rows_per_page = max(
            1, context.page_size // max(1, entry.statistics.row_width)
        )
        self._position = 0
        self._exhausted = False
        base = entry.schema.column_names
        if alias is not None:
            self._columns = tuple(f"{alias}.{name}" for name in base)
        else:
            self._columns = base

    def _do_open(self) -> None:
        self._position = 0
        self._exhausted = False

    def _do_next(self) -> Optional[Row]:
        rows = self._entry.rows
        if self._position >= len(rows):
            self._exhausted = True
            return None
        if self._position % self._rows_per_page == 0:
            self.context.stats.pages_read += 1
        row = rows[self._position]
        self._position += 1
        self.context.stats.rows_scanned += 1
        if self.alias is not None:
            return {f"{self.alias}.{name}": value for name, value in row.items()}
        return dict(row)

    def _scan_count(self) -> Optional[int]:
        return self._position

    def _scan_exhausted(self) -> bool:
        return self._exhausted

    @property
    def output_columns(self) -> Tuple[str, ...]:
        return self._columns


class Filter(_UnaryIterator):
    """Keep rows satisfying a predicate."""

    def __init__(self, context, source, predicate: Predicate):
        super().__init__(context, source)
        self.predicate = predicate

    def _do_next(self) -> Optional[Row]:
        while True:
            row = self.source.next()
            if row is None:
                return None
            if self.predicate.evaluate(row):
                self.context.stats.rows_emitted += 1
                return row


class FilterScan(VolcanoIterator):
    """Combined scan + filter: the 'complex mapping' physical operator."""

    def __init__(self, context, table, alias, predicate: Predicate):
        super().__init__(context)
        self._scan = FileScan(context, table, alias)
        self.predicate = predicate

    def _do_open(self) -> None:
        self._scan.open()

    def _do_next(self) -> Optional[Row]:
        while True:
            row = self._scan.next()
            if row is None:
                return None
            if self.predicate.evaluate(row):
                self.context.stats.rows_emitted += 1
                return row

    def _do_close(self) -> None:
        self._scan.close()

    def _scan_count(self) -> Optional[int]:
        return self._scan._scan_count()

    def _scan_exhausted(self) -> bool:
        return self._scan._scan_exhausted()

    @property
    def output_columns(self) -> Tuple[str, ...]:
        return self._scan.output_columns


class Materialize(_UnaryIterator):
    """Drain the input into the context's intermediate store, then serve it.

    The producer side of multi-query sharing: the drained rows land in
    ``context.intermediates[name]`` where any later plan's
    :class:`IntermediateScan` (sharing the same
    :class:`~repro.executor.runtime.ExecutionContext` or an explicit
    ``intermediates=`` store) can read them.  Writing is charged as
    ``pages_written``; the pass-through serve is free, mirroring the
    cost model's ``materialize`` algorithm.
    """

    def __init__(self, context, source, name: str, row_width: int = 100):
        super().__init__(context, source)
        self.name = name
        self.row_width = row_width
        self._buffer: List[Row] = []
        self._position = 0

    def _do_open(self) -> None:
        super()._do_open()
        self._buffer = []
        while True:
            row = self.source.next()
            if row is None:
                break
            self._buffer.append(row)
        self.context.intermediates[self.name] = self._buffer
        self._position = 0
        pages = self.context.pages_for(len(self._buffer), self.row_width)
        self.context.stats.pages_written += pages

    def _do_next(self) -> Optional[Row]:
        if self._position >= len(self._buffer):
            return None
        row = self._buffer[self._position]
        self._position += 1
        return row

    def _do_close(self) -> None:
        # The store entry survives: later plans scan it.
        self._buffer = []
        super()._do_close()


class IntermediateScan(VolcanoIterator):
    """Scan a materialized intermediate, paged like a stored table."""

    def __init__(
        self,
        context,
        name: str,
        columns: Sequence[str],
        row_width: int = 100,
    ):
        super().__init__(context)
        self.name = name
        self._columns = tuple(columns)
        self._rows_per_page = max(1, context.page_size // max(1, row_width))
        self._rows: List[Row] = []
        self._position = 0
        self._exhausted = False

    def _do_open(self) -> None:
        store = self.context.intermediates
        if self.name not in store:
            raise ExecutionError(
                f"intermediate {self.name!r} has not been materialized; "
                f"run its producer plan against the same store first"
            )
        self._rows = store[self.name]
        self._position = 0
        self._exhausted = False

    def _do_next(self) -> Optional[Row]:
        if self._position >= len(self._rows):
            self._exhausted = True
            return None
        if self._position % self._rows_per_page == 0:
            self.context.stats.pages_read += 1
        row = self._rows[self._position]
        self._position += 1
        self.context.stats.rows_scanned += 1
        return dict(row)

    def _scan_count(self) -> Optional[int]:
        return self._position

    def _scan_exhausted(self) -> bool:
        return self._exhausted

    @property
    def output_columns(self) -> Tuple[str, ...]:
        return self._columns


class Project(_UnaryIterator):
    """Keep a subset of columns (no duplicate elimination)."""

    def __init__(self, context, source, columns: Sequence[str]):
        super().__init__(context, source)
        self.columns = tuple(columns)

    def _do_next(self) -> Optional[Row]:
        row = self.source.next()
        if row is None:
            return None
        try:
            return {name: row[name] for name in self.columns}
        except KeyError as missing:
            raise ExecutionError(f"project: missing column {missing}") from None

    @property
    def output_columns(self) -> Tuple[str, ...]:
        return self.columns


class Sort(_UnaryIterator):
    """Full sort; materializes its input (a stop point in the pipeline)."""

    def __init__(self, context, source, sort_columns: Sequence[str], row_width: int = 100):
        super().__init__(context, source)
        self.sort_columns = tuple(sort_columns)
        self.row_width = row_width
        self._buffer: List[Row] = []
        self._position = 0

    def _do_open(self) -> None:
        super()._do_open()
        self._buffer = []
        while True:
            row = self.source.next()
            if row is None:
                break
            self._buffer.append(row)
        try:
            self._buffer.sort(key=lambda row: tuple(row[c] for c in self.sort_columns))
        except KeyError as missing:
            raise ExecutionError(f"sort: missing column {missing}") from None
        self._position = 0
        stats = self.context.stats
        stats.rows_sorted += len(self._buffer)
        # Single-level merge accounting: write runs once, read them back.
        pages = self.context.pages_for(len(self._buffer), self.row_width)
        stats.pages_written += pages
        stats.pages_read += pages

    def _do_next(self) -> Optional[Row]:
        if self._position >= len(self._buffer):
            return None
        row = self._buffer[self._position]
        self._position += 1
        return row

    def _do_close(self) -> None:
        self._buffer = []
        super()._do_close()


class _BinaryIterator(VolcanoIterator):
    def __init__(self, context, left: VolcanoIterator, right: VolcanoIterator):
        super().__init__(context)
        self.left = left
        self.right = right

    def _do_open(self) -> None:
        self.left.open()
        self.right.open()

    def _do_close(self) -> None:
        self.left.close()
        self.right.close()

    @property
    def output_columns(self) -> Tuple[str, ...]:
        return self.left.output_columns + self.right.output_columns


class MergeJoin(_BinaryIterator):
    """Join two inputs sorted on the join keys; handles duplicate groups."""

    def __init__(self, context, left, right, key_pairs: Sequence[Tuple[str, str]]):
        super().__init__(context, left, right)
        if not key_pairs:
            raise ExecutionError("merge join requires at least one key pair")
        self.key_pairs = tuple(key_pairs)
        self._left_row: Optional[Row] = None
        self._right_group: List[Row] = []
        self._right_next: Optional[Row] = None
        self._group_key = None
        self._group_index = 0

    def _left_key(self, row):
        return tuple(row[left] for left, _ in self.key_pairs)

    def _right_key(self, row):
        return tuple(row[right] for _, right in self.key_pairs)

    def _do_open(self) -> None:
        super()._do_open()
        self._left_row = self.left.next()
        self._right_next = self.right.next()
        self._right_group = []
        self._group_key = None
        self._group_index = 0

    def _advance_right_group(self, key) -> None:
        """Load the group of right rows whose key equals ``key``."""
        self._right_group = []
        self._group_key = key
        while self._right_next is not None:
            right_key = self._right_key(self._right_next)
            self.context.stats.comparisons += 1
            if right_key < key:
                self._right_next = self.right.next()
            elif right_key == key:
                self._right_group.append(self._right_next)
                self._right_next = self.right.next()
            else:
                break

    def _do_next(self) -> Optional[Row]:
        stats = self.context.stats
        while self._left_row is not None:
            key = self._left_key(self._left_row)
            if self._group_key != key:
                self._advance_right_group(key)
                self._group_index = 0
            if self._group_index < len(self._right_group):
                right_row = self._right_group[self._group_index]
                self._group_index += 1
                combined = {**self._left_row, **right_row}
                stats.rows_emitted += 1
                return combined
            self._left_row = self.left.next()
            self._group_index = 0
            # Keep the group: the next left row may share the key.
        return None


class HashJoin(_BinaryIterator):
    """Build a hash table on the left input, probe with the right."""

    def __init__(self, context, left, right, key_pairs: Sequence[Tuple[str, str]]):
        super().__init__(context, left, right)
        if not key_pairs:
            raise ExecutionError("hash join requires at least one key pair")
        self.key_pairs = tuple(key_pairs)
        self._table: Dict[Tuple, List[Row]] = {}
        self._matches: List[Row] = []
        self._match_index = 0
        self._probe_row: Optional[Row] = None

    def _do_open(self) -> None:
        super()._do_open()
        self._table = {}
        stats = self.context.stats
        while True:
            row = self.left.next()
            if row is None:
                break
            key = tuple(row[left] for left, _ in self.key_pairs)
            self._table.setdefault(key, []).append(row)
            stats.hash_build_rows += 1
        self._matches, self._match_index, self._probe_row = [], 0, None

    def _do_next(self) -> Optional[Row]:
        stats = self.context.stats
        while True:
            if self._match_index < len(self._matches):
                left_row = self._matches[self._match_index]
                self._match_index += 1
                stats.rows_emitted += 1
                return {**left_row, **self._probe_row}
            self._probe_row = self.right.next()
            if self._probe_row is None:
                return None
            stats.hash_probe_rows += 1
            key = tuple(self._probe_row[right] for _, right in self.key_pairs)
            self._matches = self._table.get(key, [])
            self._match_index = 0


class NestedLoopsJoin(_BinaryIterator):
    """Arbitrary-predicate join; materializes the right (inner) input."""

    def __init__(self, context, left, right, predicate: Predicate):
        super().__init__(context, left, right)
        self.predicate = predicate
        self._inner: List[Row] = []
        self._outer_row: Optional[Row] = None
        self._inner_index = 0

    def _do_open(self) -> None:
        super()._do_open()
        self._inner = []
        while True:
            row = self.right.next()
            if row is None:
                break
            self._inner.append(row)
        self._outer_row = self.left.next()
        self._inner_index = 0

    def _do_next(self) -> Optional[Row]:
        stats = self.context.stats
        while self._outer_row is not None:
            while self._inner_index < len(self._inner):
                inner_row = self._inner[self._inner_index]
                self._inner_index += 1
                combined = {**self._outer_row, **inner_row}
                stats.comparisons += 1
                if self.predicate.evaluate(combined):
                    stats.rows_emitted += 1
                    return combined
            self._outer_row = self.left.next()
            self._inner_index = 0
        return None


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


_AGGREGATES: Dict[str, Callable[[List[object]], object]] = {
    "count": len,
    "sum": sum,
    "min": min,
    "max": max,
    "avg": lambda values: sum(values) / len(values) if values else None,
}


class _AggregateBase(_UnaryIterator):
    """Shared grouping/aggregation logic.

    ``aggregates`` are ``(output_name, function_name, input_column)``
    triples; ``count`` ignores its input column.
    """

    def __init__(self, context, source, group_columns, aggregates):
        super().__init__(context, source)
        self.group_columns = tuple(group_columns)
        self.aggregates = tuple(aggregates)
        for _, function_name, _ in self.aggregates:
            if function_name not in _AGGREGATES:
                raise ExecutionError(f"unknown aggregate {function_name!r}")

    def _finish_group(self, key, rows: List[Row]) -> Row:
        result: Row = dict(zip(self.group_columns, key))
        for output_name, function_name, column in self.aggregates:
            if function_name == "count":
                result[output_name] = len(rows)
            else:
                values = [row[column] for row in rows]
                result[output_name] = _AGGREGATES[function_name](values)
        self.context.stats.rows_emitted += 1
        return result

    @property
    def output_columns(self) -> Tuple[str, ...]:
        return self.group_columns + tuple(name for name, _, _ in self.aggregates)


class HashAggregate(_AggregateBase):
    """Group by hashing; materializes all groups on open."""

    def _do_open(self) -> None:
        super()._do_open()
        groups: Dict[Tuple, List[Row]] = {}
        order: List[Tuple] = []
        while True:
            row = self.source.next()
            if row is None:
                break
            key = tuple(row[c] for c in self.group_columns)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
        self._results = [self._finish_group(key, groups[key]) for key in order]
        self._position = 0

    def _do_next(self) -> Optional[Row]:
        if self._position >= len(self._results):
            return None
        row = self._results[self._position]
        self._position += 1
        return row


class SortedAggregate(_AggregateBase):
    """Group a sorted stream; pipelined, one group buffered at a time."""

    def _do_open(self) -> None:
        super()._do_open()
        self._pending = self.source.next()

    def _do_next(self) -> Optional[Row]:
        if self._pending is None:
            return None
        key = tuple(self._pending[c] for c in self.group_columns)
        rows = [self._pending]
        while True:
            row = self.source.next()
            if row is None:
                self._pending = None
                break
            next_key = tuple(row[c] for c in self.group_columns)
            self.context.stats.comparisons += 1
            if next_key != key:
                self._pending = row
                break
            rows.append(row)
        return self._finish_group(key, rows)


# ---------------------------------------------------------------------------
# Set operations
# ---------------------------------------------------------------------------


class UnionAll(VolcanoIterator):
    """Concatenate inputs (bag union)."""

    def __init__(self, context, sources: Sequence[VolcanoIterator]):
        super().__init__(context)
        if not sources:
            raise ExecutionError("union needs at least one input")
        self.sources = list(sources)
        self._index = 0

    def _do_open(self) -> None:
        for source in self.sources:
            source.open()
        self._index = 0

    def _do_next(self) -> Optional[Row]:
        while self._index < len(self.sources):
            row = self.sources[self._index].next()
            if row is not None:
                self.context.stats.rows_emitted += 1
                return row
            self._index += 1
        return None

    def _do_close(self) -> None:
        for source in self.sources:
            source.close()

    @property
    def output_columns(self) -> Tuple[str, ...]:
        return self.sources[0].output_columns


class HashDistinct(_UnaryIterator):
    """Duplicate elimination by hashing."""

    def _do_open(self) -> None:
        super()._do_open()
        self._seen = set()

    def _do_next(self) -> Optional[Row]:
        while True:
            row = self.source.next()
            if row is None:
                return None
            key = tuple(sorted(row.items()))
            if key in self._seen:
                continue
            self._seen.add(key)
            self.context.stats.rows_emitted += 1
            return row


class _MergeSetOperation(_BinaryIterator):
    """Base for sort-based intersection/difference on equally sorted inputs.

    The key columns are positional: ``pairs`` maps the left column to the
    equivalent right column, as in the paper's intersection example where
    any matching sort order of the two inputs will do.
    """

    def __init__(self, context, left, right, pairs: Sequence[Tuple[str, str]]):
        super().__init__(context, left, right)
        self.pairs = tuple(pairs)

    def _do_open(self) -> None:
        super()._do_open()
        self._left_row = self.left.next()
        self._right_row = self.right.next()

    def _left_key(self, row):
        return tuple(row[left] for left, _ in self.pairs)

    def _right_key(self, row):
        return tuple(row[right] for _, right in self.pairs)


class MergeIntersect(_MergeSetOperation):
    """Sorted intersection (distinct semantics)."""

    def _do_next(self) -> Optional[Row]:
        stats = self.context.stats
        while self._left_row is not None and self._right_row is not None:
            left_key = self._left_key(self._left_row)
            right_key = self._right_key(self._right_row)
            stats.comparisons += 1
            if left_key < right_key:
                self._left_row = self.left.next()
            elif right_key < left_key:
                self._right_row = self.right.next()
            else:
                result = self._left_row
                # Skip duplicates on both sides (set semantics).
                while self._left_row is not None and self._left_key(self._left_row) == left_key:
                    self._left_row = self.left.next()
                while self._right_row is not None and self._right_key(self._right_row) == right_key:
                    self._right_row = self.right.next()
                stats.rows_emitted += 1
                return result
        return None


class MergeExcept(_MergeSetOperation):
    """Sorted difference: left rows whose key is absent on the right."""

    def _do_next(self) -> Optional[Row]:
        stats = self.context.stats
        while self._left_row is not None:
            left_key = self._left_key(self._left_row)
            while self._right_row is not None and self._right_key(self._right_row) < left_key:
                self._right_row = self.right.next()
            stats.comparisons += 1
            if self._right_row is not None and self._right_key(self._right_row) == left_key:
                while (
                    self._left_row is not None
                    and self._left_key(self._left_row) == left_key
                ):
                    self._left_row = self.left.next()
                continue
            result = self._left_row
            while self._left_row is not None and self._left_key(self._left_row) == left_key:
                self._left_row = self.left.next()
            stats.rows_emitted += 1
            return result
        return None


class Exchange(_UnaryIterator):
    """Volcano's exchange operator, simulated serially.

    Partitions its input into ``degree`` buckets by hashing the
    partitioning columns, then replays the buckets in partition order —
    the data movement a parallel system would perform, with every
    transferred row counted.  It enforces the *partitioning* physical
    property of the parallel model.
    """

    def __init__(self, context, source, partition_columns: Sequence[str], degree: int):
        super().__init__(context, source)
        if degree < 1:
            raise ExecutionError("exchange degree must be at least 1")
        self.partition_columns = tuple(partition_columns)
        self.degree = degree

    def _do_open(self) -> None:
        super()._do_open()
        buckets: List[List[Row]] = [[] for _ in range(self.degree)]
        while True:
            row = self.source.next()
            if row is None:
                break
            key = tuple(row[c] for c in self.partition_columns)
            buckets[hash(key) % self.degree].append(row)
            self.context.stats.exchanges += 1
        self._rows = [row for bucket in buckets for row in bucket]
        self._position = 0

    def _do_next(self) -> Optional[Row]:
        if self._position >= len(self._rows):
            return None
        row = self._rows[self._position]
        self._position += 1
        return row
