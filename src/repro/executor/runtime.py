"""Execution runtime: per-query statistics and context.

The executor exists so optimized plans actually run — the Volcano
project's query execution engine is the substrate the optimizer
generator was built for ("compiled and linked with the other DBMS
software such as the query execution engine").  The statistics let the
benchmarks validate the cost model's inputs against reality (DESIGN.md
invariant 8): page counts for scans are exact, row counts compare
against cardinality estimates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.catalog.catalog import Catalog

__all__ = ["ExecutionStats", "ExecutionContext"]


@dataclass
class ExecutionStats:
    """Counters accumulated while a plan runs."""

    pages_read: int = 0
    pages_written: int = 0
    rows_scanned: int = 0
    rows_emitted: int = 0
    rows_sorted: int = 0
    hash_build_rows: int = 0
    hash_probe_rows: int = 0
    comparisons: int = 0
    exchanges: int = 0
    operators_opened: int = 0
    operators_closed: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        for name in vars(self):
            setattr(self, name, 0)

    def __str__(self) -> str:
        return (
            f"io={self.pages_read}r/{self.pages_written}w "
            f"rows={self.rows_scanned}scan/{self.rows_emitted}out "
            f"sorted={self.rows_sorted} hash={self.hash_build_rows}b/"
            f"{self.hash_probe_rows}p"
        )


class ExecutionContext:
    """Shared state for one plan execution."""

    def __init__(self, catalog: Catalog, stats: Optional[ExecutionStats] = None):
        self.catalog = catalog
        self.page_size = catalog.page_size
        self.stats = stats if stats is not None else ExecutionStats()

    def pages_for(self, row_count: int, row_width: int) -> int:
        """Page count for ``row_count`` rows of ``row_width`` bytes."""
        rows_per_page = max(1, self.page_size // max(1, row_width))
        return max(1, math.ceil(row_count / rows_per_page)) if row_count else 0
