"""Execution runtime: per-query statistics and context.

The executor exists so optimized plans actually run — the Volcano
project's query execution engine is the substrate the optimizer
generator was built for ("compiled and linked with the other DBMS
software such as the query execution engine").  The statistics let the
benchmarks validate the cost model's inputs against reality (DESIGN.md
invariant 8): page counts for scans are exact, row counts compare
against cardinality estimates.

Beyond the aggregate counters, the stats carry *per-operator* observed
row counts keyed by the plan node's stable id (assigned by
:class:`~repro.executor.compile.PlanCompiler` in instrumented mode, in
pre-order so id ``i`` is the ``i``-th node of
:meth:`PhysicalPlan.walk`).  These are what the execution-feedback
subsystem (:mod:`repro.feedback`) joins against the optimizer's
cardinality estimates to compute q-errors.  Instrumentation is
observation-only: uninstrumented runs leave the per-node maps empty and
behave byte-identically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.catalog.catalog import Catalog

__all__ = ["ExecutionStats", "ExecutionContext"]


@dataclass
class ExecutionStats:
    """Counters accumulated while a plan runs.

    ``node_rows``
        Rows each instrumented plan node returned from ``next()``, keyed
        by the node's stable (pre-order) id.  Demand-driven: an operator
        whose consumer stopped pulling reports the rows actually
        produced, which is what execution effort reflects.
    ``node_scan_rows``
        Rows each instrumented *scan* node read from its stored table
        (pre-filter for the combined filter_scan operator).
    ``node_scan_complete``
        Whether that scan ran to exhaustion — only then is its read
        count an observation of the table's true cardinality.
    """

    pages_read: int = 0
    pages_written: int = 0
    rows_scanned: int = 0
    rows_emitted: int = 0
    rows_sorted: int = 0
    hash_build_rows: int = 0
    hash_probe_rows: int = 0
    comparisons: int = 0
    exchanges: int = 0
    operators_opened: int = 0
    operators_closed: int = 0
    node_rows: Dict[int, int] = field(default_factory=dict)
    node_scan_rows: Dict[int, int] = field(default_factory=dict)
    node_scan_complete: Dict[int, bool] = field(default_factory=dict)

    def reset(self) -> None:
        """Zero every counter."""
        for name, value in vars(self).items():
            if isinstance(value, dict):
                value.clear()
            else:
                setattr(self, name, 0)

    def work(self) -> float:
        """A scalar proxy for execution effort, comparable across plans.

        Pages are weighted to reflect that I/O dominates row handling in
        the cost model; the row-level counters approximate CPU work.
        Deterministic for a fixed plan and dataset, so tests and the
        regress harness can assert "the re-optimized plan did less
        work" without wall-clock noise.
        """
        return (
            10.0 * (self.pages_read + self.pages_written)
            + self.rows_scanned
            + self.rows_emitted
            + self.rows_sorted
            + self.hash_build_rows
            + self.hash_probe_rows
            + self.comparisons
            + self.exchanges
        )

    def __str__(self) -> str:
        return (
            f"io={self.pages_read}r/{self.pages_written}w "
            f"rows={self.rows_scanned}scan/{self.rows_emitted}out "
            f"sorted={self.rows_sorted} hash={self.hash_build_rows}b/"
            f"{self.hash_probe_rows}p"
        )


class ExecutionContext:
    """Shared state for one plan execution."""

    def __init__(
        self,
        catalog: Catalog,
        stats: Optional[ExecutionStats] = None,
        intermediates: Optional[Dict[str, list]] = None,
    ):
        self.catalog = catalog
        self.page_size = catalog.page_size
        self.stats = stats if stats is not None else ExecutionStats()
        # Materialized intermediates (multi-query sharing): name → rows.
        # Pass one dict across several executions so a batch's producer
        # plans feed its consumer plans.
        self.intermediates: Dict[str, list] = (
            intermediates if intermediates is not None else {}
        )

    def pages_for(self, row_count: int, row_width: int) -> int:
        """Page count for ``row_count`` rows of ``row_width`` bytes."""
        rows_per_page = max(1, self.page_size // max(1, row_width))
        return max(1, math.ceil(row_count / rows_per_page)) if row_count else 0
