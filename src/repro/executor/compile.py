"""Compile optimized physical plans into runnable iterator trees.

The bridge between the optimizer's output (a :class:`PhysicalPlan`) and
the execution engine — "the generated code is compiled and linked with
[…] the query execution engine".  Each physical algorithm and enforcer
of the bundled models maps to one iterator class.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.algebra.plans import PhysicalPlan
from repro.algebra.predicates import equi_join_pairs
from repro.catalog.catalog import Catalog
from repro.errors import ExecutionError
from repro.executor.iterators import (
    Exchange,
    FileScan,
    Filter,
    FilterScan,
    HashAggregate,
    HashJoin,
    IntermediateScan,
    Materialize,
    MergeJoin,
    NestedLoopsJoin,
    Project,
    Row,
    Sort,
    SortedAggregate,
    VolcanoIterator,
)
from repro.executor.runtime import ExecutionContext, ExecutionStats

__all__ = ["PlanCompiler", "execute_plan"]


class PlanCompiler:
    """Turns plans of the bundled models into iterator trees.

    Extensible: ``register(algorithm_name, builder)`` adds support for
    new physical operators; builders receive
    ``(compiler, context, plan_node, compiled_inputs)``.
    """

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self._builders: Dict[str, Callable] = {
            "file_scan": _build_file_scan,
            "filter": _build_filter,
            "filter_scan": _build_filter_scan,
            "project": _build_project,
            "sort": _build_sort,
            "merge_join": _build_merge_join,
            "hybrid_hash_join": _build_hash_join,
            "nested_loops_join": _build_nested_loops,
            "exchange": _build_exchange,
            "hash_aggregate": _build_hash_aggregate,
            "stream_aggregate": _build_stream_aggregate,
            "materialize": _build_materialize,
            "scan_intermediate": _build_intermediate_scan,
        }

    def register(self, algorithm: str, builder: Callable) -> None:
        """Add (or replace) the iterator builder for ``algorithm``."""
        self._builders[algorithm] = builder

    def compile(
        self,
        plan: PhysicalPlan,
        context: Optional[ExecutionContext] = None,
        *,
        instrument: bool = False,
    ) -> VolcanoIterator:
        """Build the iterator tree for ``plan``.

        With ``instrument=True`` every iterator is tagged with the
        stable id of the plan node it implements — the node's pre-order
        position, i.e. the index at which :meth:`PhysicalPlan.walk`
        yields it — so the run's :class:`ExecutionStats` collects
        per-operator observed row counts for the execution-feedback
        subsystem (:mod:`repro.feedback`).  The default is
        observation-free: no ids, no per-node counters, identical
        behavior to an uninstrumented build.
        """
        context = context or ExecutionContext(self.catalog)
        counter = [0] if instrument else None
        return self._compile(plan, context, counter)

    def _compile(
        self,
        plan: PhysicalPlan,
        context: ExecutionContext,
        counter: Optional[List[int]] = None,
    ) -> VolcanoIterator:
        builder = self._builders.get(plan.algorithm)
        if builder is None:
            raise ExecutionError(f"no iterator for algorithm {plan.algorithm!r}")
        node_id = None
        if counter is not None:
            node_id = counter[0]
            counter[0] += 1
        inputs = [self._compile(child, context, counter) for child in plan.inputs]
        iterator = builder(self, context, plan, inputs)
        if node_id is not None:
            iterator.node_id = node_id
        return iterator


def _build_file_scan(compiler, context, plan, inputs):
    table, alias = plan.args
    return FileScan(context, table, alias)


def _build_filter(compiler, context, plan, inputs):
    (predicate,) = plan.args
    return Filter(context, inputs[0], predicate)


def _build_filter_scan(compiler, context, plan, inputs):
    table, alias, predicate = plan.args
    return FilterScan(context, table, alias, predicate)


def _build_project(compiler, context, plan, inputs):
    (columns,) = plan.args
    return Project(context, inputs[0], columns)


def _resolve_sort_columns(order, available: Tuple[str, ...]) -> List[str]:
    """Pick one concrete column per (possibly equivalence-set) sort key."""
    columns = []
    for key in order:
        names = key if isinstance(key, frozenset) else frozenset((key,))
        chosen = next((name for name in available if name in names), None)
        if chosen is None:
            raise ExecutionError(
                f"sort key {set(names)} not available in {available}"
            )
        columns.append(chosen)
    return columns


def _build_sort(compiler, context, plan, inputs):
    (order,) = plan.args
    source = inputs[0]
    columns = _resolve_sort_columns(order, source.output_columns)
    return Sort(context, source, columns)


def _join_pairs(plan, left, right):
    (predicate,) = plan.args
    pairs = equi_join_pairs(
        predicate,
        frozenset(left.output_columns),
        frozenset(right.output_columns),
    )
    if pairs is None:
        raise ExecutionError(f"not an equi-join predicate: {predicate}")
    return pairs


def _ordered_merge_pairs(plan, left, right, pairs):
    """Put the key pairs in the order the plan's inputs are sorted by."""
    left_order = plan.inputs[0].properties.sort_order
    if not left_order:
        return pairs
    ordered = []
    remaining = list(pairs)
    for key in left_order:
        hit = next((pair for pair in remaining if pair[0] in key), None)
        if hit is None:
            break
        ordered.append(hit)
        remaining.remove(hit)
    return tuple(ordered + remaining)


def _build_merge_join(compiler, context, plan, inputs):
    pairs = _join_pairs(plan, inputs[0], inputs[1])
    pairs = _ordered_merge_pairs(plan, inputs[0], inputs[1], pairs)
    return MergeJoin(context, inputs[0], inputs[1], pairs)


def _build_hash_join(compiler, context, plan, inputs):
    pairs = _join_pairs(plan, inputs[0], inputs[1])
    return HashJoin(context, inputs[0], inputs[1], pairs)


def _build_nested_loops(compiler, context, plan, inputs):
    (predicate,) = plan.args
    return NestedLoopsJoin(context, inputs[0], inputs[1], predicate)


def _build_exchange(compiler, context, plan, inputs):
    partitioning = plan.properties.partitioning
    if partitioning is None:
        raise ExecutionError("exchange plan node carries no partitioning")
    columns = _resolve_sort_columns(partitioning.keys, inputs[0].output_columns)
    return Exchange(context, inputs[0], columns, partitioning.degree)


def _build_materialize(compiler, context, plan, inputs):
    name, row_width = plan.args
    return Materialize(context, inputs[0], name, row_width)


def _build_intermediate_scan(compiler, context, plan, inputs):
    name, columns, row_width = plan.args
    return IntermediateScan(context, name, columns, row_width)


def _build_hash_aggregate(compiler, context, plan, inputs):
    group_by, aggregates = plan.args
    return HashAggregate(context, inputs[0], group_by, aggregates)


def _build_stream_aggregate(compiler, context, plan, inputs):
    group_by, aggregates = plan.args
    return SortedAggregate(context, inputs[0], group_by, aggregates)


def execute_plan(
    plan: PhysicalPlan,
    catalog: Catalog,
    stats: Optional[ExecutionStats] = None,
    *,
    instrument: bool = False,
    intermediates: Optional[Dict[str, List[Row]]] = None,
) -> List[Row]:
    """Compile and drain a plan; returns its result rows.

    ``instrument=True`` additionally fills ``stats.node_rows`` (and the
    scan-side per-node counters) with observed row counts keyed by plan
    node id; see :meth:`PlanCompiler.compile`.

    ``intermediates`` is a shared name → rows store for multi-query
    sharing: execute a batch's ``materialize`` producer plans against
    one dict (in :attr:`SharingReport.shared_plans` order), then the
    rewritten query plans against the same dict so their
    ``scan_intermediate`` leaves find the rows.
    """
    context = ExecutionContext(catalog, stats, intermediates=intermediates)
    iterator = PlanCompiler(catalog).compile(plan, context, instrument=instrument)
    return iterator.drain()
