"""System R-style bottom-up dynamic programming baseline (S12)."""

from repro.systemr.enumerator import (
    SystemROptimizer,
    SystemROptions,
    SystemRResult,
    SystemRStats,
    decompose_join_query,
)

__all__ = [
    "SystemROptimizer",
    "SystemROptions",
    "SystemRResult",
    "SystemRStats",
    "decompose_join_query",
]
