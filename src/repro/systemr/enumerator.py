"""A System R-style bottom-up dynamic programming optimizer.

The paper repeatedly situates Volcano against the classic bottom-up DP of
System R (its reference [15]) and Starburst: "Dynamic programming has
been used before in database query optimization, in particular in the
System R optimizer and in Starburst's cost-based optimizer, but only for
relational select-project-join queries."

This baseline is that algorithm: enumerate relation subsets by size,
keep the best plan per (subset, interesting order), and combine subsets
with join algorithms — forward (by possibilities), not goal-directed.
It shares the relational model's cost and property functions, so its
optimal costs must agree with Volcano's (DESIGN.md invariant 6); the
benchmarks compare the *work* each strategy performs.

Like System R, it supports left-deep-only enumeration (composite inners
excluded) and, like Starburst's cost-based optimizer, optionally bushy
trees.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.algebra.expressions import LogicalExpression
from repro.algebra.plans import PhysicalPlan
from repro.algebra.predicates import Predicate, conjunction_of
from repro.algebra.properties import ANY_PROPS, LogicalProperties, PhysProps
from repro.catalog.catalog import Catalog
from repro.errors import (
    BudgetExceededError,
    OptimizationFailedError,
    ReproError,
    SearchError,
)
from repro.model.context import OptimizerContext
from repro.model.cost import Cost
from repro.model.spec import AlgorithmNode, ModelSpecification
from repro.options import BudgetMeter, BudgetTripped, OptionsBase, ResourceBudget
from repro.search.engine import OptimizationResult, _resolve_props

__all__ = ["SystemROptions", "SystemRStats", "SystemRResult", "SystemROptimizer", "decompose_join_query"]


@dataclass(frozen=True, kw_only=True)
class SystemROptions(OptionsBase):
    """Enumeration policy.

    ``bushy``
        When False (the System R default), only left-deep trees are
        enumerated ("no composite inner"); when True, all bushy trees
        (the Starburst extension the paper mentions).
    ``allow_cross_products``
        Consider predicate-less subset combinations (System R avoided
        Cartesian products unless unavoidable; we reject them outright).
    ``budget``
        A :class:`~repro.options.ResourceBudget` bounding the
        enumeration (deadline, costings, rule firings).  Bottom-up DP
        has no complete plan until the final level, so there is no
        anytime degradation here: a trip raises
        :class:`~repro.errors.BudgetExceededError` with partial stats.
    """

    bushy: bool = False
    allow_cross_products: bool = False
    budget: Optional[ResourceBudget] = None


@dataclass
class SystemRStats:
    """Work counters of one bottom-up enumeration."""

    subsets_considered: int = 0
    joins_costed: int = 0
    entries_kept: int = 0
    elapsed_seconds: float = 0.0


@dataclass
class SystemRResult(OptimizationResult):
    """A bottom-up enumeration outcome; ``stats`` holds :class:`SystemRStats`."""


def decompose_join_query(
    query: LogicalExpression,
) -> Tuple[List[LogicalExpression], List[Predicate]]:
    """Split a join tree into per-relation leaf expressions and conjuncts.

    A *leaf* is any non-join subtree (get, select over get, …).  Join
    predicates are flattened into their conjuncts.
    """
    leaves: List[LogicalExpression] = []
    conjuncts: List[Predicate] = []

    def visit(node: LogicalExpression) -> None:
        if node.operator == "join":
            conjuncts.extend(node.args[0].conjuncts())
            visit(node.inputs[0])
            visit(node.inputs[1])
        else:
            leaves.append(node)

    visit(query)
    return leaves, conjuncts


@dataclass
class _Entry:
    """Best plan for a (subset, delivered order) combination."""

    plan: PhysicalPlan
    cost: Cost


class SystemROptimizer:
    """Bottom-up DP with interesting orders over the relational model."""

    def __init__(
        self,
        spec: ModelSpecification,
        catalog: Catalog,
        options: Optional[SystemROptions] = None,
    ):
        spec.validate()
        if "join" not in spec.operators:
            raise SearchError("the System R enumerator requires a join operator")
        self.spec = spec
        self.catalog = catalog
        self.options = options or SystemROptions()

    # ------------------------------------------------------------------

    def optimize(
        self,
        query: LogicalExpression,
        props: Optional[PhysProps] = None,
        *,
        options: Optional[SystemROptions] = None,
        required: Optional[PhysProps] = None,
    ) -> SystemRResult:
        """Bottom-up DP over the query's relations; returns the best plan.

        Conforms to the :class:`~repro.search.Optimizer` protocol:
        ``options`` overrides this instance's :class:`SystemROptions`
        for one call; ``required=`` survives as a deprecation shim.
        """
        props = _resolve_props(props, required)
        return self._optimize(
            query, props, options if options is not None else self.options
        )

    def _optimize(
        self,
        query: LogicalExpression,
        required: Optional[PhysProps],
        options: SystemROptions,
    ) -> SystemRResult:
        required = required if required is not None else ANY_PROPS
        started = time.perf_counter()
        stats = SystemRStats()
        meter = BudgetMeter(options.budget)
        try:
            context = OptimizerContext(self.spec, self.catalog)
            leaves, conjuncts = decompose_join_query(query)
            if not leaves:
                raise OptimizationFailedError("query has no relations")
            columns = [
                frozenset(context.logical_props(leaf).column_names) for leaf in leaves
            ]

            # Logical properties per subset, derived once.
            props: Dict[FrozenSet[int], LogicalProperties] = {}
            # DP table: subset -> delivered sort order -> best entry.
            table: Dict[FrozenSet[int], Dict[Tuple, _Entry]] = {}

            for index, leaf in enumerate(leaves):
                subset = frozenset((index,))
                props[subset] = context.logical_props(leaf)
                table[subset] = {}
                self._add_entry(
                    table[subset], self._leaf_plan(context, leaf, props[subset]), stats
                )

            all_indices = frozenset(range(len(leaves)))
            try:
                for size in range(2, len(leaves) + 1):
                    for subset_tuple in itertools.combinations(
                        sorted(all_indices), size
                    ):
                        meter.check("enumeration")
                        subset = frozenset(subset_tuple)
                        entries: Dict[Tuple, _Entry] = {}
                        stats.subsets_considered += 1
                        for left, right, predicate in self._splits(
                            subset, columns, conjuncts, options
                        ):
                            if left not in table or right not in table:
                                continue
                            if subset not in props:
                                props[subset] = context.derive_logical_props(
                                    "join", (predicate,), (props[left], props[right])
                                )
                            self._combine(
                                context,
                                entries,
                                table[left],
                                table[right],
                                predicate,
                                props[subset],
                                props[left],
                                props[right],
                                stats,
                                meter,
                            )
                        if entries:
                            table[subset] = entries
            except BudgetTripped as trip:
                # Bottom-up DP has no complete plan until the last DP
                # level, so there is nothing to degrade to.
                report = meter.report(trip.phase)
                raise BudgetExceededError(
                    f"System R enumeration budget exhausted "
                    f"({report.tripped} during {report.phase}) after "
                    f"{stats.subsets_considered} subsets",
                    report=report,
                    stats=stats,
                ) from None
            final = table.get(all_indices)
            if not final:
                raise OptimizationFailedError(
                    "no connected join order found (cross products disabled)"
                )
            best = self._pick_final(context, final, props[all_indices], required)
            return SystemRResult(
                plan=best.plan, cost=best.cost, required=required, stats=stats
            )
        except ReproError as error:
            if getattr(error, "stats", None) is None:
                error.stats = stats
            raise
        finally:
            stats.elapsed_seconds = time.perf_counter() - started

    # ------------------------------------------------------------------

    def _splits(self, subset, columns, conjuncts, options):
        """(left, right, predicate) decompositions of a subset."""
        members = sorted(subset)
        for size in range(1, len(members)):
            for left_tuple in itertools.combinations(members, size):
                left = frozenset(left_tuple)
                right = subset - left
                if not options.bushy and len(left) > 1 and len(right) > 1:
                    continue  # left-deep: one side must be a single relation
                predicate = self._predicate_between(left, right, columns, conjuncts)
                if predicate is None and not self.options.allow_cross_products:
                    continue
                yield left, right, predicate if predicate is not None else conjunction_of([])

    def _predicate_between(self, left, right, columns, conjuncts):
        left_columns = frozenset().union(*(columns[i] for i in left))
        right_columns = frozenset().union(*(columns[i] for i in right))
        combined = left_columns | right_columns
        applicable = [
            conjunct
            for conjunct in conjuncts
            if conjunct.columns() <= combined
            and not conjunct.columns() <= left_columns
            and not conjunct.columns() <= right_columns
        ]
        if not applicable:
            return None
        return conjunction_of(applicable)

    def _leaf_plan(self, context, leaf, leaf_props) -> PhysicalPlan:
        """Cheapest access path for one relation's subquery."""
        # Reuse the Volcano engine on the single leaf: exact and simple.
        from repro.search.engine import VolcanoOptimizer

        result = VolcanoOptimizer(self.spec, self.catalog).optimize(leaf)
        return result.plan

    def _combine(
        self,
        context,
        entries,
        left_entries,
        right_entries,
        predicate,
        output_props,
        left_props,
        right_props,
        stats,
        meter,
    ) -> None:
        node = AlgorithmNode((predicate,), output_props, (left_props, right_props))
        for name in ("hybrid_hash_join", "merge_join", "nested_loops_join"):
            if name not in self.spec.algorithms:
                continue
            algorithm = self.spec.algorithm(name)
            alternatives = algorithm.applicability(context, node, ANY_PROPS) or []
            for requirements in alternatives:
                local = algorithm.cost(context, node)
                for left_entry in left_entries.values():
                    left_plan = self._satisfy(
                        context, left_entry, requirements[0], left_props
                    )
                    if left_plan is None:
                        continue
                    for right_entry in right_entries.values():
                        right_plan = self._satisfy(
                            context, right_entry, requirements[1], right_props
                        )
                        if right_plan is None:
                            continue
                        stats.joins_costed += 1
                        meter.charge_costing()
                        total = local + left_plan.cost + right_plan.cost
                        delivered = algorithm.derive_props(
                            context,
                            node,
                            (left_plan.properties, right_plan.properties),
                        )
                        plan = PhysicalPlan(
                            name,
                            (predicate,),
                            (left_plan, right_plan),
                            properties=delivered,
                            cost=total,
                        )
                        self._add_entry(entries, plan, stats)

    def _satisfy(self, context, entry, requirement, input_props):
        """Make an entry satisfy an input requirement, sorting if needed."""
        if entry.plan.properties.covers(requirement):
            return entry.plan
        if not requirement.sort_order:
            return entry.plan if requirement.is_any else None
        enforcer = self.spec.enforcers.get("sort")
        if enforcer is None:
            return None
        applications = enforcer.enforce(context, requirement, input_props)
        if not applications:
            return None
        application = applications[0]
        node = AlgorithmNode(application.args, input_props, (input_props,))
        cost = enforcer.cost(context, node)
        return PhysicalPlan(
            "sort",
            application.args,
            (entry.plan,),
            properties=application.delivered,
            cost=entry.plan.cost + cost,
            is_enforcer=True,
        )

    def _add_entry(self, entries: Dict[Tuple, _Entry], plan: PhysicalPlan, stats) -> None:
        """Keep the best plan per delivered order, pruning dominated ones."""
        key = plan.properties.sort_order
        existing = entries.get(key)
        if existing is not None and existing.cost <= plan.cost:
            return
        # Dominance: a cheaper plan whose order covers this key also wins.
        for other_key, other in entries.items():
            if other.cost <= plan.cost and PhysProps(sort_order=other_key).covers(
                PhysProps(sort_order=key)
            ):
                return
        entries[key] = _Entry(plan, plan.cost)
        stats.entries_kept += 1
        # Remove entries this one dominates.
        dominated = [
            other_key
            for other_key, other in entries.items()
            if other_key != key
            and plan.cost <= other.cost
            and plan.properties.covers(PhysProps(sort_order=other_key))
        ]
        for other_key in dominated:
            del entries[other_key]

    def _pick_final(self, context, entries, output_props, required) -> _Entry:
        best: Optional[_Entry] = None
        for entry in entries.values():
            plan = self._satisfy(context, entry, required, output_props)
            if plan is None:
                continue
            if best is None or plan.cost < best.cost:
                best = _Entry(plan, plan.cost)
        if best is None:
            raise OptimizationFailedError(
                f"no plan delivers the required properties [{required}]"
            )
        return best
