"""Command-line driver for the optimizer generator.

``python -m repro.generator MODEL`` runs the Figure 1 pipeline for a
bundled model: it emits the generated optimizer module (integer-coded
tables + ``build_optimizer``) into a content-keyed cache directory and,
for the specialized/compiled tiers, generates the model's search kernel
(see :mod:`repro.generator.kernel`).  Unchanged specifications reuse
their cached modules; ``--force`` regenerates unconditionally.

Examples::

    python -m repro.generator relational
    python -m repro.generator --all --tier specialized
    python -m repro.generator oodb --tier compiled --force --out build/
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.generator.codegen import compile_and_load, source_fingerprint
from repro.generator.kernel import (
    KERNEL_TIERS,
    kernel_cache_dir,
    kernel_for,
    spec_fingerprint,
)

#: Bundled models: CLI name -> provider (``module:callable``).  The
#: provider string is embedded into the generated module, which re-calls
#: it at import time to verify the tables have not drifted.
BUNDLED_MODELS = {
    "relational": "repro.models.relational:relational_model",
    "aggregates": "repro.models.aggregates:aggregate_model",
    "oodb": "repro.models.oodb:oodb_model",
    "parallel": "repro.models.parallel:parallel_relational_model",
    "setops": "repro.models.setops:setops_model",
}


def _load_provider(provider: str):
    module_name, _, attribute = provider.partition(":")
    module = __import__(module_name, fromlist=[attribute])
    return getattr(module, attribute)


def _generate_one(name: str, provider: str, args) -> int:
    spec = _load_provider(provider)()
    out = Path(args.out) if args.out else kernel_cache_dir()
    out.mkdir(parents=True, exist_ok=True)
    module = compile_and_load(
        spec, provider, out, tier=args.tier, force=args.force
    )
    action = "generated" if module.GENERATED else "cached"
    print(f"{name}: optimizer module {action} at {module.__file__}")
    if args.tier != "interpreted":
        kernel = kernel_for(spec, args.tier, force=args.force)
        status = f"tier={kernel.tier}"
        if kernel.fallback_reason:
            status += f" (fell back from {kernel.requested_tier!r}: " \
                f"{kernel.fallback_reason})"
        print(
            f"{name}: kernel {kernel.fingerprint} {status} "
            f"at {kernel.source_path or '<memory>'}"
        )
    else:
        print(f"{name}: kernel fingerprint {spec_fingerprint(spec)} (not built)")
    if args.verbose:
        text = Path(module.__file__).read_text()
        print(f"{name}: module fingerprint {source_fingerprint(text)}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.generator",
        description="Generate optimizer modules and search kernels.",
    )
    parser.add_argument(
        "model",
        nargs="?",
        choices=sorted(BUNDLED_MODELS),
        help="bundled model to generate (omit with --all)",
    )
    parser.add_argument(
        "--all", action="store_true", help="generate every bundled model"
    )
    parser.add_argument(
        "--tier",
        choices=KERNEL_TIERS,
        default="specialized",
        help="kernel tier baked into the module (default: specialized)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="cache directory (default: the kernel cache, "
        "$REPRO_KERNEL_CACHE or ~/.cache/repro-kernels)",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="regenerate even when the cached module's fingerprint matches",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    if args.all == (args.model is not None):
        parser.error("name exactly one bundled model, or pass --all")
    names = sorted(BUNDLED_MODELS) if args.all else [args.model]
    status = 0
    for name in names:
        status |= _generate_one(name, BUNDLED_MODELS[name], args)
    return status


if __name__ == "__main__":
    sys.exit(main())
