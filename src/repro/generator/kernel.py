"""Specialized per-model search kernels (generated move loops).

The paper's generator emits optimizer *source code* in which "all strings
were translated into integers, which ensured very fast pattern matching".
:mod:`repro.generator.codegen` freezes integer tables but still links the
generic interpreted engine; this module goes the rest of the way: it
emits a **search kernel** — a Python module in which every rule's pattern
match is unrolled into straight-line code.

For each transformation and implementation rule the kernel contains a
generator function equivalent to
:func:`repro.model.patterns.match_memo` for that rule's pattern, with

* the pattern-tree walk removed (nested ``OpPattern`` nodes become
  nested ``for`` loops over ``expressions_of``),
* operator comparisons against interned string constants (CPython
  resolves these by pointer identity first — the moral equivalent of the
  paper's integer comparison; the kernel also assigns every operator,
  algorithm, and rule a frozen integer code),
* binding dicts built as single literals in the exact key order the
  interpreter produces.

A :class:`SearchKernel` binds the generated matchers to the *live* rule
objects of a specification and hands the search engine per-operator
dispatch tables.  Kernelized runs are byte-identical to interpreted runs
by construction: the matchers yield the same bindings in the same order
over the same live ``expressions_of`` callback (lazy semantics included
— rules fired mid-enumeration are observed, exactly like the
interpreter), and everything else in the engine is shared.

Tiers
-----

``"interpreted"``
    No kernel: the engine walks pattern objects (the baseline).
``"specialized"``
    The generated pure-Python kernel (always available).
``"compiled"``
    The specialized kernel compiled with mypyc (or Cython) when a
    toolchain is present.  When neither toolchain imports, the kernel
    **falls back to the specialized tier automatically** and records the
    reason in :attr:`SearchKernel.fallback_reason` — requesting
    ``"compiled"`` never fails and never changes plans.

Generated modules are cached on disk keyed by a content hash of the
generated source (see :func:`spec_fingerprint`); unchanged specs reuse
the cached module file, and ``force=True`` regenerates.
"""

from __future__ import annotations

import hashlib
import importlib.util
import json
import os
import sys
import tempfile
import types
import weakref
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import GenerationError
from repro.model.patterns import AnyPattern, OpPattern
from repro.model.spec import ModelSpecification

__all__ = [
    "KERNEL_TIERS",
    "SearchKernel",
    "generate_kernel_source",
    "spec_fingerprint",
    "kernel_for",
    "resolve_kernel",
    "kernel_cache_dir",
    "clear_kernel_caches",
]

KERNEL_TIERS = ("interpreted", "specialized", "compiled")

#: Bumped whenever the generated-module layout changes; part of the
#: fingerprint so stale cache files from older layouts never load.
KERNEL_SCHEMA = 2

_CACHE_ENV = "REPRO_KERNEL_CACHE"


# ---------------------------------------------------------------------------
# Matcher code emission
# ---------------------------------------------------------------------------


def _emit_matcher(name: str, pattern: OpPattern, rule_name: str) -> List[str]:
    """Emit one rule's inlined binding enumerator.

    The generated function is the unrolled equivalent of
    ``match_memo(pattern, operator, args, input_groups, expressions_of)``
    *given* that the caller dispatched on the pattern's top operator (the
    kernel's per-operator tables guarantee it).  Bindings are yielded as
    fresh dict literals whose key order replicates the interpreter's
    insertion order — the engine fingerprints bindings by their items,
    so the order is part of the contract.
    """
    lines: List[str] = [f"def {name}(args, input_groups, expressions_of):"]
    lines.append(f'    """[{rule_name}] inlined matcher for {str(pattern)!r}."""')
    arity = len(pattern.inputs)
    lines.append(f"    if len(input_groups) != {arity}:")
    lines.append("        return")
    binds: List[Tuple[str, str]] = []
    if pattern.args_as is not None:
        binds.append((pattern.args_as, "args"))
    counter = [0]

    def emit_inputs(patterns, group_exprs, indent: int) -> None:
        pad = "    " * indent
        if not patterns:
            items = ", ".join(f"{key!r}: {value}" for key, value in binds)
            lines.append(f"{pad}yield {{{items}}}")
            return
        head, rest_patterns = patterns[0], patterns[1:]
        head_group, rest_groups = group_exprs[0], group_exprs[1:]
        if isinstance(head, AnyPattern):
            binds.append((head.name, f"group_leaf({head_group})"))
            emit_inputs(rest_patterns, rest_groups, indent)
            binds.pop()
            return
        if not isinstance(head, OpPattern):  # pragma: no cover - validated specs
            raise GenerationError(f"not a pattern node: {head!r}")
        n = counter[0]
        counter[0] += 1
        op_v, args_v, igs_v = f"op_{n}", f"args_{n}", f"igs_{n}"
        lines.append(
            f"{pad}for {op_v}, {args_v}, {igs_v} in expressions_of({head_group}):"
        )
        inner = pad + "    "
        lines.append(
            f"{inner}if {op_v} != {head.operator!r} "
            f"or len({igs_v}) != {len(head.inputs)}:"
        )
        lines.append(f"{inner}    continue")
        if head.args_as is not None:
            binds.append((head.args_as, args_v))
        emit_inputs(
            tuple(head.inputs) + tuple(rest_patterns),
            tuple(f"{igs_v}[{i}]" for i in range(len(head.inputs)))
            + tuple(rest_groups),
            indent + 1,
        )
        if head.args_as is not None:
            binds.pop()

    emit_inputs(
        tuple(pattern.inputs),
        tuple(f"input_groups[{i}]" for i in range(arity)),
        1,
    )
    return lines


def _count_inner_ops(pattern: OpPattern) -> int:
    """Number of nested ``OpPattern`` nodes below the root (= loop count)."""
    total = 0
    stack = list(pattern.inputs)
    while stack:
        node = stack.pop()
        if isinstance(node, OpPattern):
            total += 1
            stack.extend(node.inputs)
    return total


def _emit_delta(name: str, pattern: OpPattern, rule_name: str) -> List[str]:
    """Emit one rule's *delta* binding enumerator.

    Same walk as the plain matcher, but for resuming a stale cache entry
    whose probed groups have only **appended** expressions since it was
    filled (``Memo.probes_append_only``).  Each loop level learns the
    probed group's old expression count via ``old_len``; a combination
    whose every index falls inside the old prefix is one the previous
    enumeration already produced, so its cached dict is consumed
    *positionally* from ``old`` (product order over intact prefixes is
    the cached order) and appended to ``out`` without being yielded —
    the engine already fingerprinted it, so re-yielding would be a
    no-op.  Combinations touching at least one new expression are built
    and yielded exactly like the plain matcher.  ``out`` ends up in
    full-walk order, ready to be cached as if a complete re-enumeration
    had run.

    ``unchanged`` reports whether any group merge happened since the
    walk started: a mid-walk merge may rewrite a probed prefix, so the
    positional replay stops and every remaining combination is yielded
    (the interpreter's behaviour) — the resulting cache entry is stale
    by construction and never served.
    """
    lines: List[str] = [
        f"def {name}(args, input_groups, expressions_of, "
        f"old_len, old, out, unchanged):"
    ]
    lines.append(f'    """[{rule_name}] delta matcher for {str(pattern)!r}."""')
    arity = len(pattern.inputs)
    lines.append(f"    if len(input_groups) != {arity}:")
    lines.append("        return")
    lines.append("    ptr = 0")
    binds: List[Tuple[str, str]] = []
    if pattern.args_as is not None:
        binds.append((pattern.args_as, "args"))
    counter = [0]
    guards: List[str] = []

    def emit_inputs(patterns, group_exprs, indent: int) -> None:
        pad = "    " * indent
        if not patterns:
            condition = " and ".join(guards + ["unchanged()"])
            lines.append(f"{pad}if {condition}:")
            lines.append(f"{pad}    out.append(old[ptr])")
            lines.append(f"{pad}    ptr += 1")
            lines.append(f"{pad}    continue")
            items = ", ".join(f"{key!r}: {value}" for key, value in binds)
            lines.append(f"{pad}b = {{{items}}}")
            lines.append(f"{pad}out.append(b)")
            lines.append(f"{pad}yield dict(b)")
            return
        head, rest_patterns = patterns[0], patterns[1:]
        head_group, rest_groups = group_exprs[0], group_exprs[1:]
        if isinstance(head, AnyPattern):
            binds.append((head.name, f"group_leaf({head_group})"))
            emit_inputs(rest_patterns, rest_groups, indent)
            binds.pop()
            return
        if not isinstance(head, OpPattern):  # pragma: no cover - validated specs
            raise GenerationError(f"not a pattern node: {head!r}")
        n = counter[0]
        counter[0] += 1
        op_v, args_v, igs_v = f"op_{n}", f"args_{n}", f"igs_{n}"
        i_v, k_v = f"i_{n}", f"k_{n}"
        lines.append(f"{pad}{k_v} = old_len({head_group})")
        lines.append(
            f"{pad}for {i_v}, ({op_v}, {args_v}, {igs_v}) in "
            f"enumerate(expressions_of({head_group})):"
        )
        inner = pad + "    "
        lines.append(
            f"{inner}if {op_v} != {head.operator!r} "
            f"or len({igs_v}) != {len(head.inputs)}:"
        )
        lines.append(f"{inner}    continue")
        if head.args_as is not None:
            binds.append((head.args_as, args_v))
        guards.append(f"{i_v} < {k_v}")
        emit_inputs(
            tuple(head.inputs) + tuple(rest_patterns),
            tuple(f"{igs_v}[{i}]" for i in range(len(head.inputs)))
            + tuple(rest_groups),
            indent + 1,
        )
        guards.pop()
        if head.args_as is not None:
            binds.pop()

    emit_inputs(
        tuple(pattern.inputs),
        tuple(f"input_groups[{i}]" for i in range(arity)),
        1,
    )
    lines.append("    if ptr != len(old) and unchanged():")
    lines.append("        raise RuntimeError(")
    lines.append(
        f'            "[{rule_name}] delta enumeration drift: '
        f'consumed %d of %d cached bindings"'
    )
    lines.append("            % (ptr, len(old))")
    lines.append("        )")
    return lines


def generate_kernel_source(spec: ModelSpecification) -> str:
    """Emit the specialized kernel module for ``spec`` (without header).

    The emitted module is self-verifying raw material: it carries the
    rendered pattern of every rule so :func:`kernel_for` can refuse to
    bind a cached kernel to a drifted specification.
    """
    from repro.generator.codegen import render_pattern_code

    spec.validate()
    operator_codes = {name: code for code, name in enumerate(sorted(spec.operators))}
    algorithm_codes = {
        name: code for code, name in enumerate(sorted(spec.algorithms))
    }
    enforcer_codes = {name: code for code, name in enumerate(sorted(spec.enforcers))}

    lines: List[str] = []
    emit = lines.append
    emit('"""Generated search kernel — do not edit.')
    emit("")
    emit(f"Specialized move loops for model {spec.name!r}: every rule's pattern")
    emit("match is unrolled into straight-line generator code (see")
    emit("repro.generator.kernel).  Regenerate with `python -m repro.generator`.")
    emit('"""')
    emit("")
    emit("from repro.algebra.expressions import group_leaf")
    emit("")
    emit(f"KERNEL_SCHEMA = {KERNEL_SCHEMA}")
    emit(f"MODEL_NAME = {spec.name!r}")
    emit("")
    emit("# Frozen integer codes (stable within a fingerprint).")
    emit(f"OPERATOR_CODES = {operator_codes!r}")
    emit(f"ALGORITHM_CODES = {algorithm_codes!r}")
    emit(f"ENFORCER_CODES = {enforcer_codes!r}")
    emit("")
    def emit_rules(rules, prefix: str) -> List[str]:
        rows = []
        for index, rule in enumerate(rules):
            fname = f"_{prefix}{index}"
            emit("")
            lines.extend(_emit_matcher(fname, rule.pattern, rule.name))
            # Flat patterns (no nested operator loops) read no group
            # expressions, so their cache entries never go stale — a
            # delta enumerator would be dead code.
            dname = "None"
            if _count_inner_ops(rule.pattern):
                dname = f"_{prefix}{index}_d"
                emit("")
                lines.extend(_emit_delta(dname, rule.pattern, rule.name))
            rows.append(
                f"    ({rule.name!r}, {rule.top_operator!r}, "
                f"{render_pattern_code(rule.pattern)!r}, {fname}, {dname}),"
            )
        return rows

    transformation_rows = emit_rules(spec.transformations, "t")
    implementation_rows = emit_rules(spec.implementations, "i")
    emit("")
    emit("")
    emit("# (rule name, top operator, rendered pattern, matcher, delta")
    emit("# matcher or None) in spec order.")
    emit("TRANSFORMATION_MATCHERS = (")
    lines.extend(transformation_rows)
    emit(")")
    emit("")
    emit("IMPLEMENTATION_MATCHERS = (")
    lines.extend(implementation_rows)
    emit(")")
    emit("")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Fingerprinting
# ---------------------------------------------------------------------------

# Fingerprint memo keyed by the spec object's id, validated by weakref
# (a reused id after garbage collection misses instead of lying).
_FINGERPRINTS: Dict[int, Tuple["weakref.ref", str, str]] = {}


def spec_fingerprint(spec: ModelSpecification) -> str:
    """Content hash of everything the kernel freezes for ``spec``.

    Two specifications share a fingerprint exactly when their generated
    kernels are textually identical — same operators, algorithms,
    enforcers, rule names, promises and pattern shapes.  Support
    *functions* (conditions, rewrites, cost code) are deliberately not
    hashed: the kernel never encodes them — it binds the live rule
    objects at resolution time, so two specs differing only in Python
    callables correctly share one kernel module.
    """
    return _source_and_fingerprint(spec)[1]


def _source_and_fingerprint(spec: ModelSpecification) -> Tuple[str, str]:
    key = id(spec)
    memo = _FINGERPRINTS.get(key)
    if memo is not None:
        ref, source, fingerprint = memo
        if ref() is spec:
            return source, fingerprint
        del _FINGERPRINTS[key]
    source = generate_kernel_source(spec)
    fingerprint = hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]
    try:
        _FINGERPRINTS[key] = (weakref.ref(spec), source, fingerprint)
    except TypeError:  # spec type without weakref support
        pass
    return source, fingerprint


# ---------------------------------------------------------------------------
# The kernel object
# ---------------------------------------------------------------------------


class SearchKernel:
    """A specification's generated move loops, bound to its live rules.

    ``transformation_dispatch`` and ``implementation_dispatch`` map a top
    operator to a tuple of ``(rule, matcher, delta)`` triples in
    specification order — drop-in replacements for the engine's
    interpreted dispatch tables, with a generated matcher (and, for
    nested patterns, a delta enumerator for append-only cache resume)
    alongside each rule.

    Pickling collapses to the *requested tier string* (kernels hold
    generated functions, which do not pickle): the receiving process —
    e.g. an ``optimize_many`` worker — re-resolves the kernel for its
    own spec object via :func:`resolve_kernel`, hitting the module cache.
    """

    __slots__ = (
        "model",
        "fingerprint",
        "tier",
        "requested_tier",
        "fallback_reason",
        "source_path",
        "transformation_dispatch",
        "implementation_dispatch",
        "module",
    )

    def __init__(
        self,
        spec: ModelSpecification,
        module: types.ModuleType,
        *,
        fingerprint: str,
        tier: str,
        requested_tier: str,
        fallback_reason: Optional[str] = None,
        source_path: Optional[Path] = None,
    ):
        self.model = spec.name
        self.fingerprint = fingerprint
        self.tier = tier
        self.requested_tier = requested_tier
        self.fallback_reason = fallback_reason
        self.source_path = source_path
        self.module = module
        self.transformation_dispatch = _bind_dispatch(
            spec.transformations,
            module.TRANSFORMATION_MATCHERS,
            "transformation",
            spec,
        )
        self.implementation_dispatch = _bind_dispatch(
            spec.implementations,
            module.IMPLEMENTATION_MATCHERS,
            "implementation",
            spec,
        )

    def __reduce__(self):
        return (str, (self.requested_tier,))

    def __repr__(self) -> str:
        suffix = (
            f" (fell back from {self.requested_tier!r}: {self.fallback_reason})"
            if self.fallback_reason
            else ""
        )
        return (
            f"<SearchKernel {self.model} {self.fingerprint} "
            f"tier={self.tier!r}{suffix}>"
        )


def _bind_dispatch(rules, matcher_rows, kind: str, spec: ModelSpecification):
    """Pair live rule objects with their generated matchers, verified."""
    from repro.generator.codegen import render_pattern_code

    if len(rules) != len(matcher_rows):
        raise GenerationError(
            f"kernel drift: module has {len(matcher_rows)} {kind} matchers "
            f"but spec {spec.name!r} has {len(rules)} rules — regenerate"
        )
    dispatch: Dict[str, List] = {}
    for rule, row in zip(rules, matcher_rows):
        name, top_operator, rendered, matcher, delta = row
        if rule.name != name or rule.top_operator != top_operator:
            raise GenerationError(
                f"kernel drift: {kind} rule {rule.name!r} does not match "
                f"generated entry {name!r} — regenerate"
            )
        if render_pattern_code(rule.pattern) != rendered:
            raise GenerationError(
                f"kernel drift: pattern of {kind} rule {rule.name!r} changed "
                f"since generation — regenerate"
            )
        dispatch.setdefault(top_operator, []).append((rule, matcher, delta))
    return {operator: tuple(triples) for operator, triples in dispatch.items()}


# ---------------------------------------------------------------------------
# Caching, loading, the compiled tier
# ---------------------------------------------------------------------------

# (fingerprint, tier) -> (module, effective_tier, fallback_reason, path)
_MODULES: Dict[Tuple[str, str], Tuple[types.ModuleType, str, Optional[str], Optional[Path]]] = {}


def kernel_cache_dir() -> Path:
    """The on-disk kernel cache root (override with $REPRO_KERNEL_CACHE)."""
    override = os.environ.get(_CACHE_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-kernels"


def clear_kernel_caches() -> None:
    """Drop the in-process module and fingerprint caches (tests)."""
    _MODULES.clear()
    _FINGERPRINTS.clear()


def _load_module_from_path(name: str, path: Path) -> types.ModuleType:
    module_spec = importlib.util.spec_from_file_location(name, path)
    if module_spec is None or module_spec.loader is None:
        raise GenerationError(f"cannot import generated kernel from {path}")
    module = importlib.util.module_from_spec(module_spec)
    sys.modules[name] = module
    try:
        module_spec.loader.exec_module(module)
    except Exception as error:
        sys.modules.pop(name, None)
        raise GenerationError(f"generated kernel failed to load: {error}") from error
    return module


def _exec_in_memory(name: str, source: str) -> types.ModuleType:
    module = types.ModuleType(name)
    module.__file__ = f"<generated kernel {name}>"
    exec(compile(source, module.__file__, "exec"), module.__dict__)
    return module


def _materialize(
    spec: ModelSpecification, source: str, fingerprint: str, force: bool
) -> Tuple[types.ModuleType, Optional[Path]]:
    """Write-or-reuse the kernel source on disk and import it.

    Layout: ``<cache>/<model>-<fingerprint>/kernel.py`` plus a small
    ``meta.json``.  An existing ``kernel.py`` under the same fingerprint
    directory is trusted verbatim (the fingerprint *is* the content
    hash) unless ``force`` rewrites it.  Unwritable cache directories
    degrade to executing the source in memory.
    """
    name = f"repro_kernel_{spec.name}_{fingerprint}"
    try:
        directory = kernel_cache_dir() / f"{spec.name}-{fingerprint}"
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / "kernel.py"
        if force or not path.exists():
            # Write-then-rename so concurrent processes never import a
            # half-written module.
            handle = tempfile.NamedTemporaryFile(
                "w", dir=directory, suffix=".tmp", delete=False
            )
            try:
                handle.write(source)
            finally:
                handle.close()
            os.replace(handle.name, path)
            (directory / "meta.json").write_text(
                json.dumps(
                    {
                        "model": spec.name,
                        "fingerprint": fingerprint,
                        "schema": KERNEL_SCHEMA,
                    },
                    indent=2,
                )
            )
        return _load_module_from_path(name, path), path
    except OSError:
        return _exec_in_memory(name, source), None


def _attempt_compile(
    path: Optional[Path], name: str
) -> Tuple[Optional[types.ModuleType], Optional[str]]:
    """Best-effort native compilation of a kernel source file.

    Tries mypyc, then Cython.  Returns ``(module, None)`` on success or
    ``(None, reason)`` when no toolchain is available or the build
    fails — the caller falls back to the pure-Python module.  This never
    raises: a missing compiler must not break optimization.
    """
    if path is None:
        return None, "kernel cache directory unavailable (in-memory module)"
    reasons = []
    try:
        from mypyc.build import mypycify  # noqa: F401
    except Exception as error:
        reasons.append(f"mypyc unavailable ({error})")
    else:
        outcome = _compile_with_mypyc(path, name)
        if isinstance(outcome, types.ModuleType):
            return outcome, None
        reasons.append(outcome)
    try:
        import Cython  # noqa: F401
    except Exception as error:
        reasons.append(f"Cython unavailable ({error})")
    else:
        outcome = _compile_with_cython(path, name)
        if isinstance(outcome, types.ModuleType):
            return outcome, None
        reasons.append(outcome)
    return None, "; ".join(reasons)


def _compile_with_mypyc(path: Path, name: str):
    """Compile with mypyc into the kernel's cache directory."""
    try:
        import subprocess

        result = subprocess.run(
            [sys.executable, "-m", "mypyc", str(path)],
            cwd=path.parent,
            capture_output=True,
            text=True,
            timeout=300,
        )
        if result.returncode != 0:
            return f"mypyc build failed ({result.stderr.strip()[:200]})"
        for candidate in path.parent.glob("kernel*.so"):
            return _load_module_from_path(name, candidate)
        return "mypyc produced no extension module"
    except Exception as error:  # pragma: no cover - toolchain-dependent
        return f"mypyc build failed ({error})"


def _compile_with_cython(path: Path, name: str):
    """Compile with cythonize into the kernel's cache directory."""
    try:
        import subprocess

        result = subprocess.run(
            [sys.executable, "-m", "cython", "-3", str(path)],
            cwd=path.parent,
            capture_output=True,
            text=True,
            timeout=300,
        )
        if result.returncode != 0:
            return f"cython build failed ({result.stderr.strip()[:200]})"
        # Building the extension needs a C toolchain driven by
        # setuptools; left to environments that ship one.
        return "cython transpiled but no extension build is configured"
    except Exception as error:  # pragma: no cover - toolchain-dependent
        return f"cython build failed ({error})"


def kernel_for(
    spec: ModelSpecification,
    tier: str = "specialized",
    *,
    force: bool = False,
) -> Optional[SearchKernel]:
    """The (cached) search kernel for ``spec`` at ``tier``.

    ``"interpreted"`` returns ``None`` (no kernel — the engine's pattern
    interpreter runs).  ``"specialized"`` generates (or reuses, keyed by
    content fingerprint) the pure-Python kernel.  ``"compiled"``
    additionally attempts a mypyc/Cython build and silently falls back
    to the specialized module when no toolchain is present, recording
    :attr:`SearchKernel.fallback_reason`.

    The returned kernel is bound to *this* ``spec``'s rule objects; the
    underlying generated module is shared across equal-fingerprint
    specs.  ``force`` rewrites the cached module file.
    """
    if tier not in KERNEL_TIERS:
        raise GenerationError(
            f"unknown kernel tier {tier!r}; expected one of {KERNEL_TIERS}"
        )
    if tier == "interpreted":
        return None
    source, fingerprint = _source_and_fingerprint(spec)
    cached = None if force else _MODULES.get((fingerprint, tier))
    if cached is None:
        module, path = _materialize(spec, source, fingerprint, force)
        effective, reason = tier, None
        if tier == "compiled":
            name = f"repro_kernel_{spec.name}_{fingerprint}_c"
            compiled, reason = _attempt_compile(path, name)
            if compiled is not None:
                module = compiled
            else:
                effective = "specialized"
        cached = (module, effective, reason, path)
        _MODULES[(fingerprint, tier)] = cached
    module, effective, reason, path = cached
    return SearchKernel(
        spec,
        module,
        fingerprint=fingerprint,
        tier=effective,
        requested_tier=tier,
        fallback_reason=reason,
        source_path=path,
    )


def resolve_kernel(spec: ModelSpecification, kernel) -> Optional[SearchKernel]:
    """Normalize a ``SearchOptions.kernel`` value for ``spec``.

    Accepts ``None``/``"interpreted"`` (no kernel), a tier string, or a
    :class:`SearchKernel`.  A kernel object is re-resolved through the
    module cache so it is always bound to the *caller's* spec object —
    a kernel built for a different specification (different fingerprint)
    is rejected rather than silently producing wrong dispatch tables.
    """
    if kernel is None:
        return None
    if isinstance(kernel, str):
        return kernel_for(spec, kernel)
    if isinstance(kernel, SearchKernel):
        if kernel.fingerprint != spec_fingerprint(spec):
            raise GenerationError(
                f"kernel {kernel.fingerprint} was generated for a different "
                f"specification than {spec.name!r} — pass a tier string or "
                f"regenerate with kernel_for()"
            )
        return kernel_for(spec, kernel.requested_tier)
    raise GenerationError(
        f"SearchOptions.kernel must be None, a tier string "
        f"{KERNEL_TIERS}, or a SearchKernel; got {type(kernel).__name__}"
    )
