"""The optimizer generator: spec validation, linking, source emission (S8)."""

from repro.generator.codegen import (
    compile_and_load,
    generate_source,
    source_fingerprint,
)
from repro.generator.generate import generate_optimizer, lint_specification
from repro.generator.kernel import (
    KERNEL_TIERS,
    SearchKernel,
    clear_kernel_caches,
    generate_kernel_source,
    kernel_cache_dir,
    kernel_for,
    resolve_kernel,
    spec_fingerprint,
)

__all__ = [
    "compile_and_load",
    "generate_source",
    "source_fingerprint",
    "generate_optimizer",
    "lint_specification",
    "KERNEL_TIERS",
    "SearchKernel",
    "clear_kernel_caches",
    "generate_kernel_source",
    "kernel_cache_dir",
    "kernel_for",
    "resolve_kernel",
    "spec_fingerprint",
]
