"""The optimizer generator: spec validation, linking, source emission (S8)."""

from repro.generator.codegen import compile_and_load, generate_source
from repro.generator.generate import generate_optimizer, lint_specification

__all__ = [
    "compile_and_load",
    "generate_source",
    "generate_optimizer",
    "lint_specification",
]
