"""Optimizer source-code emission (the faithful Figure 1 pipeline).

The paper's generator reads a model specification and writes optimizer
*source code*; "the generated code is compiled and linked with the search
engine that is part of the Volcano optimization software".  A key
implementation trick was that "all strings were translated into integers,
which ensured very fast pattern matching."

This module reproduces that pipeline for a Python host:

* :func:`generate_source` renders a standalone Python module from a
  specification.  The module contains integer-coded operator, algorithm,
  and rule tables frozen at generation time, plus a ``build_optimizer``
  factory that links the tables with the shared search engine.
* The support functions (cost, property, applicability — arbitrary Python
  callables) are obtained at import time from a *provider*, the
  ``module:callable`` that rebuilds the specification; the generated
  module **verifies** the provider against its frozen tables and refuses
  to link when they drifted apart — the moral equivalent of a C compile
  error after changing the model description without re-running the
  generator.
* :func:`compile_and_load` writes the source to disk and imports it
  ("compile and link"), returning the live module.

Tests assert that a generated-module optimizer produces byte-identical
plans to one built directly with :func:`repro.generator.generate_optimizer`.
"""

from __future__ import annotations

import hashlib
import importlib
import importlib.util
import sys
from pathlib import Path
from typing import Optional, Tuple

from repro.errors import GenerationError
from repro.model.patterns import AnyPattern
from repro.model.spec import ModelSpecification

__all__ = [
    "generate_source",
    "compile_and_load",
    "render_pattern_code",
    "source_fingerprint",
]

#: Header marker carrying the content hash of the generated module; see
#: :func:`source_fingerprint`.
_FINGERPRINT_MARKER = "# spec-fingerprint: "


def source_fingerprint(source: str) -> Optional[str]:
    """The content hash embedded in a generated module's header, if any.

    :func:`generate_source` stamps every module with a
    ``# spec-fingerprint: <hash>`` first line — the SHA-256 of the rest
    of the module text, i.e. of everything the generator froze from the
    specification.  :func:`compile_and_load` compares fingerprints to
    skip rewriting (and re-importing machinery for) modules whose
    specification has not changed.  Returns ``None`` for text without
    the marker (hand-written or pre-fingerprint modules — always
    regenerated).
    """
    first_line, _, _ = source.partition("\n")
    if first_line.startswith(_FINGERPRINT_MARKER):
        return first_line[len(_FINGERPRINT_MARKER):].strip() or None
    return None


def render_pattern_code(pattern) -> str:
    """Render a pattern as a nested tuple literal of operator codes.

    ``("op", args_as, (children…))`` for OpPattern nodes and
    ``("?", name)`` for AnyPattern leaves — a stable, comparable encoding
    of the rule shapes frozen into the generated module.
    """
    if isinstance(pattern, AnyPattern):
        return f"('?', {pattern.name!r})"
    children = ", ".join(render_pattern_code(child) for child in pattern.inputs)
    if children and len(pattern.inputs) == 1:
        children += ","
    return f"({pattern.operator!r}, {pattern.args_as!r}, ({children}))"


def _parse_provider(provider: str) -> Tuple[str, str]:
    if ":" not in provider:
        raise GenerationError(
            f"provider must be 'module:callable', got {provider!r}"
        )
    module_name, _, attribute = provider.partition(":")
    if not module_name or not attribute:
        raise GenerationError(f"malformed provider {provider!r}")
    return module_name, attribute


def generate_source(
    spec: ModelSpecification,
    provider: str,
    provider_args: str = "",
    *,
    kernel_tier: Optional[str] = None,
) -> str:
    """Emit a Python optimizer module for ``spec``.

    ``provider`` names the ``module:callable`` that reconstructs the
    specification (with ``provider_args`` as its literal argument list,
    e.g. ``"RelationalModelOptions(select_pushdown=True)"`` — the
    expression is embedded verbatim and evaluated at import time in the
    provider module's namespace).

    ``kernel_tier`` bakes a default specialized-kernel tier into the
    module: ``build_optimizer`` then fills ``SearchOptions.kernel`` with
    that tier whenever the caller left it unset (see
    :mod:`repro.generator.kernel`; ``"compiled"`` falls back to the
    pure-Python specialized kernel automatically when no toolchain is
    present).  ``None`` keeps the historical interpreted default.
    """
    spec.validate()
    if kernel_tier is not None:
        from repro.generator.kernel import KERNEL_TIERS

        if kernel_tier not in KERNEL_TIERS:
            raise GenerationError(
                f"unknown kernel tier {kernel_tier!r}; "
                f"expected one of {KERNEL_TIERS}"
            )
    module_name, attribute = _parse_provider(provider)

    # Integer-code every name, exactly once, in deterministic order.
    operator_codes = {name: code for code, name in enumerate(sorted(spec.operators))}
    algorithm_codes = {
        name: code for code, name in enumerate(sorted(spec.algorithms))
    }
    enforcer_codes = {name: code for code, name in enumerate(sorted(spec.enforcers))}

    lines = []
    emit = lines.append
    emit('"""Generated optimizer source code — do not edit.')
    emit("")
    emit(f"Generated by repro.generator.codegen from model specification")
    emit(f"{spec.name!r}.  This module freezes the model's operator, algorithm,")
    emit("and rule tables; build_optimizer() re-obtains the support functions")
    emit("from the provider and links everything with the shared search engine.")
    emit('"""')
    emit("")
    emit("from repro.errors import GenerationError")
    emit("from repro.search.engine import SearchOptions, VolcanoOptimizer")
    emit(f"from {module_name} import {attribute} as _provider")
    emit("")
    emit(f"MODEL_NAME = {spec.name!r}")
    emit("# Default specialized-kernel tier baked in at generation time;")
    emit("# None = interpreted (the engine walks pattern objects).")
    emit(f"KERNEL_TIER = {kernel_tier!r}")
    emit("")
    emit("# Operator table: name -> (code, arity); None arity = variadic.")
    emit("OPERATORS = {")
    for name in sorted(spec.operators):
        operator = spec.operators[name]
        emit(f"    {name!r}: ({operator_codes[name]}, {operator.arity!r}),")
    emit("}")
    emit("")
    emit("ALGORITHMS = {")
    for name in sorted(spec.algorithms):
        emit(f"    {name!r}: {algorithm_codes[name]},")
    emit("}")
    emit("")
    emit("ENFORCERS = {")
    for name in sorted(spec.enforcers):
        emit(f"    {name!r}: {enforcer_codes[name]},")
    emit("}")
    emit("")
    emit("# Transformation rules: name -> (top operator code, promise, pattern).")
    emit("TRANSFORMATIONS = {")
    for rule in spec.transformations:
        code = operator_codes[rule.top_operator]
        emit(
            f"    {rule.name!r}: ({code}, {rule.promise!r}, "
            f"{render_pattern_code(rule.pattern)}),"
        )
    emit("}")
    emit("")
    emit("# Implementation rules: name -> (top operator code, algorithm code,")
    emit("# promise, pattern).")
    emit("IMPLEMENTATIONS = {")
    for rule in spec.implementations:
        operator_code = operator_codes[rule.top_operator]
        algorithm_code = algorithm_codes[rule.algorithm]
        emit(
            f"    {rule.name!r}: ({operator_code}, {algorithm_code}, "
            f"{rule.promise!r}, {render_pattern_code(rule.pattern)}),"
        )
    emit("}")
    emit("")
    emit("")
    emit("def _build_spec():")
    if provider_args:
        emit(f"    return _provider({provider_args})")
    else:
        emit("    return _provider()")
    emit("")
    emit("")
    emit("def _verify(spec):")
    emit('    """Refuse to link when the provider drifted from these tables."""')
    emit("    problems = []")
    emit("    if spec.name != MODEL_NAME:")
    emit("        problems.append(")
    emit("            f'model name {spec.name!r} does not match generated '")
    emit("            f'{MODEL_NAME!r}'")
    emit("        )")
    emit("    if set(spec.operators) != set(OPERATORS):")
    emit("        problems.append('operator set changed')")
    emit("    else:")
    emit("        for name, operator in spec.operators.items():")
    emit("            if OPERATORS[name][1] != operator.arity:")
    emit("                problems.append(f'arity of {name!r} changed')")
    emit("    if set(spec.algorithms) != set(ALGORITHMS):")
    emit("        problems.append('algorithm set changed')")
    emit("    if set(spec.enforcers) != set(ENFORCERS):")
    emit("        problems.append('enforcer set changed')")
    emit("    if {r.name for r in spec.transformations} != set(TRANSFORMATIONS):")
    emit("        problems.append('transformation rule set changed')")
    emit("    if {r.name for r in spec.implementations} != set(IMPLEMENTATIONS):")
    emit("        problems.append('implementation rule set changed')")
    emit("    from repro.generator.codegen import render_pattern_code")
    emit("    for rule in spec.transformations:")
    emit("        frozen = TRANSFORMATIONS.get(rule.name)")
    emit("        if frozen and eval(render_pattern_code(rule.pattern)) != frozen[2]:")
    emit("            problems.append(f'pattern of rule {rule.name!r} changed')")
    emit("    for rule in spec.implementations:")
    emit("        frozen = IMPLEMENTATIONS.get(rule.name)")
    emit("        if frozen and eval(render_pattern_code(rule.pattern)) != frozen[3]:")
    emit("            problems.append(f'pattern of rule {rule.name!r} changed')")
    emit("    if problems:")
    emit("        raise GenerationError(")
    emit("            'model specification drifted since generation; re-run the '")
    emit("            'optimizer generator: ' + '; '.join(problems)")
    emit("        )")
    emit("")
    emit("")
    emit("def build_optimizer(catalog, options=None, estimator=None):")
    emit('    """Link the generated tables with the search engine."""')
    emit("    spec = _build_spec()")
    emit("    _verify(spec)")
    emit("    if KERNEL_TIER is not None:")
    emit("        if options is None:")
    emit("            options = SearchOptions(kernel=KERNEL_TIER)")
    emit("        elif options.kernel is None:")
    emit("            options = options.replace(kernel=KERNEL_TIER)")
    emit("    return VolcanoOptimizer(")
    emit("        spec, catalog, options=options, estimator=estimator")
    emit("    )")
    emit("")
    body = "\n".join(lines)
    digest = hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]
    return f"{_FINGERPRINT_MARKER}{digest}\n{body}"


def compile_and_load(
    spec: ModelSpecification,
    provider: str,
    path: Path,
    module_name: Optional[str] = None,
    provider_args: str = "",
    *,
    tier: Optional[str] = None,
    force: bool = False,
):
    """Write generated source to ``path`` and import it.

    Returns the loaded module, whose ``build_optimizer(catalog)`` is the
    generated optimizer's entry point.

    ``path`` may be a module file (the historical behaviour) or an
    existing **directory**, in which case the module lands in a
    content-keyed subdirectory ``<path>/<model>-<fingerprint>/optimizer.py``
    — the cache layout shared with :func:`repro.generator.kernel`.
    Either way, an existing file whose embedded ``# spec-fingerprint:``
    header matches the freshly generated source is reused without being
    rewritten (the specification has not changed); ``force=True``
    rewrites unconditionally.  The module records what happened in
    ``GENERATED`` (``True`` when the file was (re)written, ``False``
    when the cached copy was reused).

    ``tier`` bakes a default specialized-kernel tier into the module
    (see :func:`generate_source`) and eagerly resolves the kernel — so
    ``tier="compiled"`` attempts the native build *now*, at "compile and
    link" time, and the module's ``KERNEL_STATUS`` records the effective
    ``(tier, fallback_reason)`` pair.  A missing toolchain degrades to
    the pure-Python specialized kernel; it never fails the load.
    """
    source = generate_source(
        spec, provider, provider_args=provider_args, kernel_tier=tier
    )
    fingerprint = source_fingerprint(source)
    path = Path(path)
    if path.is_dir():
        path = path / f"{spec.name}-{fingerprint}" / "optimizer.py"
        path.parent.mkdir(parents=True, exist_ok=True)
    reused = (
        not force
        and path.exists()
        and source_fingerprint(path.read_text()) == fingerprint
    )
    if not reused:
        path.write_text(source)
    name = module_name or f"generated_optimizer_{spec.name}"
    module_spec = importlib.util.spec_from_file_location(name, path)
    if module_spec is None or module_spec.loader is None:
        raise GenerationError(f"cannot import generated module from {path}")
    module = importlib.util.module_from_spec(module_spec)
    sys.modules[name] = module
    try:
        module_spec.loader.exec_module(module)
    except Exception as error:
        sys.modules.pop(name, None)
        raise GenerationError(f"generated module failed to load: {error}") from error
    setattr(module, "GENERATED", not reused)
    if tier is not None and tier != "interpreted":
        from repro.generator.kernel import kernel_for

        kernel = kernel_for(spec, tier, force=force)
        status = (kernel.tier, kernel.fallback_reason)
        setattr(module, "KERNEL_STATUS", status)
    else:
        setattr(module, "KERNEL_STATUS", ("interpreted", None))
    return module
