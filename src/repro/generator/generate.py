"""The optimizer generator: model specification → query optimizer.

"When the DBMS software is being built, a model specification is
translated into optimizer source code, which is then compiled and linked
with the other DBMS software such as the query execution engine."
(paper, Figure 1)

Two entry points mirror the two halves of the paradigm:

* :func:`generate_optimizer` — validate a specification and link it with
  the search engine directly, producing a ready-to-use optimizer in
  process (the common case for a Python host).
* :mod:`repro.generator.codegen` — emit an *optimizer source module* from
  the specification, to be imported ("compiled and linked") later; see
  that module for the faithful Figure 1 pipeline.
"""

from __future__ import annotations

from typing import List, Optional

from repro.catalog.catalog import Catalog
from repro.catalog.selectivity import SelectivityEstimator
from repro.model.spec import ModelSpecification
from repro.search.engine import SearchOptions, VolcanoOptimizer

__all__ = ["generate_optimizer", "lint_specification"]


def generate_optimizer(
    spec: ModelSpecification,
    catalog: Catalog,
    options: Optional[SearchOptions] = None,
    estimator: Optional[SelectivityEstimator] = None,
) -> VolcanoOptimizer:
    """Validate ``spec`` and link it with the search engine.

    Raises :class:`~repro.errors.ModelSpecError` when the specification
    is incomplete (missing operators, rules, or support functions).
    """
    spec.validate()
    return VolcanoOptimizer(spec, catalog, options=options, estimator=estimator)


def lint_specification(spec: ModelSpecification) -> List[str]:
    """Non-fatal quality warnings about a model specification.

    Complements :meth:`ModelSpecification.validate` (which raises on hard
    errors) with advisory findings an optimizer implementor should review.
    """
    warnings: List[str] = []
    transformed = {rule.top_operator for rule in spec.transformations}
    for name, operator in spec.operators.items():
        if operator.arity == 0:
            continue
        if name not in transformed:
            warnings.append(
                f"operator {name!r} has no transformation rule: only its "
                f"syntactic form will be considered"
            )
    used_algorithms = {rule.algorithm for rule in spec.implementations}
    for name in spec.algorithms:
        if spec.algorithms[name].utility:
            # Planted by out-of-search passes (e.g. multi-query
            # sharing), not reached through implementation rules.
            continue
        if name not in used_algorithms:
            warnings.append(
                f"algorithm {name!r} is not the target of any implementation "
                f"rule and can never appear in a plan"
            )
    if not spec.enforcers:
        warnings.append(
            "no enforcers declared: required physical properties can only "
            "be satisfied by algorithms that deliver them directly"
        )
    for rule in spec.transformations:
        if rule.promise < 0:
            warnings.append(f"transformation rule {rule.name!r} has negative promise")
    return warnings
