"""Exception hierarchy for the Volcano optimizer generator reproduction.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the subsystem that failed.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "CatalogError",
    "UnknownTableError",
    "UnknownColumnError",
    "SchemaError",
    "AlgebraError",
    "PredicateError",
    "ModelSpecError",
    "RuleError",
    "PatternError",
    "GenerationError",
    "SearchError",
    "OptimizationFailedError",
    "PlanValidationError",
    "ExecutionError",
    "SqlError",
    "MemoryLimitExceededError",
    "BudgetExceededError",
    "WorkloadError",
    "OptionsError",
    "ServiceError",
    "ServerError",
    "AdmissionError",
]


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class CatalogError(ReproError):
    """A problem with the catalog, schemas, or statistics."""


class UnknownTableError(CatalogError):
    """A table was referenced that the catalog does not know about."""

    def __init__(self, table_name):
        super().__init__(f"unknown table: {table_name!r}")
        self.table_name = table_name


class UnknownColumnError(CatalogError):
    """A column was referenced that the schema does not contain."""

    def __init__(self, column_name, schema=None):
        available = ""
        if schema is not None:
            available = f" (available: {', '.join(schema.column_names)})"
        super().__init__(f"unknown column: {column_name!r}{available}")
        self.column_name = column_name


class SchemaError(CatalogError):
    """A schema was constructed or combined incorrectly."""


class AlgebraError(ReproError):
    """A logical or physical algebra expression is malformed."""


class PredicateError(AlgebraError):
    """A predicate is malformed or cannot be evaluated."""


class ModelSpecError(ReproError):
    """A model specification is incomplete or inconsistent.

    The optimizer generator validates the specification before generating
    an optimizer; validation failures raise this error (paper Section 2.2:
    the optimizer implementor must supply operators, rules, and the full
    complement of support functions).
    """


class RuleError(ModelSpecError):
    """A transformation or implementation rule is malformed."""


class PatternError(ModelSpecError):
    """A rule pattern is malformed."""


class GenerationError(ReproError):
    """Optimizer generation (including source emission) failed."""


class SearchError(ReproError):
    """The search engine encountered an internal problem."""


class OptimizationFailedError(SearchError):
    """No plan satisfying the goal was found within the cost limit.

    This mirrors the ``failure`` return of the paper's ``FindBestPlan``
    (Figure 2): a goal is a pair of logical expression and physical
    property vector, searched under a cost limit.
    """

    def __init__(self, message="no plan found within the cost limit"):
        super().__init__(message)


class PlanValidationError(SearchError):
    """A chosen plan does not satisfy the requested physical properties.

    The paper lists this as one of the generated optimizers' consistency
    checks: "generated optimizers verify that the physical properties of a
    chosen plan really do satisfy the physical property vector given as
    part of the optimization goal."
    """


class ExecutionError(ReproError):
    """The iterator execution engine failed while running a plan."""


class SqlError(ReproError):
    """The SQL front-end rejected a query text."""

    def __init__(self, message, position=None):
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class MemoryLimitExceededError(SearchError):
    """An optimizer exceeded its configured memory budget.

    The paper reports that "the EXODUS optimizer generator aborted due to
    lack of memory" for some complex queries; the EXODUS baseline raises
    this error when its MESH node budget is exhausted.
    """

    def __init__(self, node_count, budget):
        super().__init__(
            f"memory budget exhausted: {node_count} nodes exceeds budget of {budget}"
        )
        self.node_count = node_count
        self.budget = budget


class BudgetExceededError(SearchError):
    """A resource budget tripped and no valid plan exists at all.

    Raised only when graceful degradation is impossible: the Volcano
    engine first tries to complete a plan from memoized winners and a
    greedy implementation pass over the explored memo, and only raises
    this when even that yields nothing (or the engine — System R, or
    EXODUS with ``best_effort=False`` — does not degrade).  ``report``
    carries the :class:`~repro.options.BudgetReport` naming the tripped
    limit; ``stats`` the partial search statistics.
    """

    def __init__(self, message, report=None, stats=None):
        super().__init__(message)
        self.report = report
        self.stats = stats


class WorkloadError(ReproError):
    """A workload generator was configured inconsistently."""


class OptionsError(ReproError):
    """An options block was constructed with invalid knob values."""


class ServiceError(ReproError):
    """The optimizer service (plan cache front-end) was misused."""


class ServerError(ReproError):
    """The optimizer server (:mod:`repro.server`) rejected a request.

    ``status`` carries the HTTP status code the server maps the error
    to on the wire (default 400: the request itself was malformed).
    """

    def __init__(self, message, status=400):
        super().__init__(message)
        self.status = status


class AdmissionError(ServerError):
    """The server's admission controller refused the request (HTTP 429).

    ``reason`` distinguishes a full queue (``"queue_full"``) from a
    queued request whose wait for a slot timed out (``"timeout"``).
    """

    def __init__(self, message, reason):
        super().__init__(message, status=429)
        self.reason = reason
