"""EXPLAIN-style reports for optimized plans.

Renders what a DBA would want from the optimizer's output: per-operator
estimated rows, delivered physical properties, local vs. cumulative
cost, plus the search statistics of the optimization that produced the
plan.  When a :class:`~repro.feedback.FeedbackReport` from an
instrumented execution is supplied, the report grows ``est_rows``,
``act_rows``, and ``q_error`` columns — EXPLAIN ANALYZE, essentially:
the optimizer's beliefs next to what actually happened.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.algebra.plans import PhysicalPlan
from repro.search.engine import OptimizationResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.feedback.report import FeedbackReport

__all__ = ["ExplainLine", "explain_plan", "explain"]


@dataclass
class ExplainLine:
    """One rendered operator of the plan.

    The three feedback fields are populated only when the plan is
    explained against a :class:`~repro.feedback.FeedbackReport`;
    ``has_feedback`` switches the rendering to include them.
    """

    depth: int
    algorithm: str
    args: str
    properties: str
    cumulative: float
    local: Optional[float]
    est_rows: Optional[float] = None
    act_rows: Optional[int] = None
    q_error: Optional[float] = None
    has_feedback: bool = False

    def render(self, width: int) -> str:
        """One aligned output line for this operator."""
        name = "  " * self.depth + self.algorithm
        if self.args:
            name += f" [{self.args}]"
        local = f"{self.local:>12.1f}" if self.local is not None else " " * 12
        properties = self.properties or "-"
        line = f"{name:<{width}}  {self.cumulative:>12.1f}  {local}"
        if self.has_feedback:
            est = f"{self.est_rows:.0f}" if self.est_rows is not None else "-"
            act = str(self.act_rows) if self.act_rows is not None else "-"
            qerr = f"{self.q_error:.2f}" if self.q_error is not None else "-"
            line += f"  {est:>10}  {act:>10}  {qerr:>8}"
        return f"{line}  {properties}"


def _local_costs(plan: PhysicalPlan) -> Optional[float]:
    """Local cost of a node: cumulative minus its inputs' cumulative."""
    if plan.cost is None:
        return None
    total = plan.cost.total()
    for child in plan.inputs:
        if child.cost is None:
            return None
        total -= child.cost.total()
    return total


def explain_plan(
    plan: PhysicalPlan, feedback: Optional["FeedbackReport"] = None
) -> str:
    """A table of the plan: operator, costs, props — and, given a
    feedback report, estimated vs. observed rows with per-operator
    q-error.

    ``feedback`` must be a report built for this exact plan (node ids
    are pre-order positions, so lines and feedback entries join
    positionally).
    """
    lines: List[ExplainLine] = []
    operators = (
        {op.node_id: op for op in feedback.operators}
        if feedback is not None
        else {}
    )
    counter = [0]

    def visit(node: PhysicalPlan, depth: int) -> None:
        node_id = counter[0]
        counter[0] += 1
        op = operators.get(node_id)
        lines.append(
            ExplainLine(
                depth=depth,
                algorithm=node.algorithm + (" (enforcer)" if node.is_enforcer else ""),
                args=", ".join(str(a) for a in node.args),
                properties=str(node.properties) if not node.properties.is_any else "",
                cumulative=node.cost.total() if node.cost is not None else 0.0,
                local=_local_costs(node),
                est_rows=op.estimated_rows if op is not None else None,
                act_rows=op.actual_rows if op is not None else None,
                q_error=op.q_error if op is not None else None,
                has_feedback=feedback is not None,
            )
        )
        for child in node.inputs:
            visit(child, depth + 1)

    visit(plan, 0)
    width = max(
        len("operator"),
        max(
            len("  " * line.depth + line.algorithm)
            + (len(line.args) + 3 if line.args else 0)
            for line in lines
        ),
    )
    header = f"{'operator':<{width}}  {'cum. cost':>12}  {'local cost':>12}"
    if feedback is not None:
        header += f"  {'est_rows':>10}  {'act_rows':>10}  {'q_error':>8}"
    header += "  properties"
    rule = "-" * len(header)
    rendered = [header, rule] + [line.render(width) for line in lines]
    if feedback is not None:
        rendered.append(f"plan max q-error: {feedback.max_q_error:.2f}")
    return "\n".join(rendered)


def explain(
    result: OptimizationResult, feedback: Optional["FeedbackReport"] = None
) -> str:
    """Explain an optimization result: the plan plus search statistics."""
    parts = [
        f"goal: [{result.required}]   total cost: {result.cost}",
        "",
        explain_plan(result.plan, feedback),
        "",
        f"search: {result.stats}",
    ]
    return "\n".join(parts)
