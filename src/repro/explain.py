"""EXPLAIN-style reports for optimized plans.

Renders what a DBA would want from the optimizer's output: per-operator
estimated rows, delivered physical properties, local vs. cumulative
cost, plus the search statistics of the optimization that produced the
plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.algebra.plans import PhysicalPlan
from repro.search.engine import OptimizationResult

__all__ = ["ExplainLine", "explain_plan", "explain"]


@dataclass
class ExplainLine:
    """One rendered operator of the plan."""

    depth: int
    algorithm: str
    args: str
    properties: str
    cumulative: float
    local: Optional[float]

    def render(self, width: int) -> str:
        """One aligned output line for this operator."""
        name = "  " * self.depth + self.algorithm
        if self.args:
            name += f" [{self.args}]"
        local = f"{self.local:>12.1f}" if self.local is not None else " " * 12
        properties = self.properties or "-"
        return (
            f"{name:<{width}}  {self.cumulative:>12.1f}  {local}  {properties}"
        )


def _local_costs(plan: PhysicalPlan) -> Optional[float]:
    """Local cost of a node: cumulative minus its inputs' cumulative."""
    if plan.cost is None:
        return None
    total = plan.cost.total()
    for child in plan.inputs:
        if child.cost is None:
            return None
        total -= child.cost.total()
    return total


def explain_plan(plan: PhysicalPlan) -> str:
    """A table of the plan: operator, cumulative cost, local cost, props."""
    lines: List[ExplainLine] = []

    def visit(node: PhysicalPlan, depth: int) -> None:
        lines.append(
            ExplainLine(
                depth=depth,
                algorithm=node.algorithm + (" (enforcer)" if node.is_enforcer else ""),
                args=", ".join(str(a) for a in node.args),
                properties=str(node.properties) if not node.properties.is_any else "",
                cumulative=node.cost.total() if node.cost is not None else 0.0,
                local=_local_costs(node),
            )
        )
        for child in node.inputs:
            visit(child, depth + 1)

    visit(plan, 0)
    width = max(
        len("operator"),
        max(
            len("  " * line.depth + line.algorithm)
            + (len(line.args) + 3 if line.args else 0)
            for line in lines
        ),
    )
    header = f"{'operator':<{width}}  {'cum. cost':>12}  {'local cost':>12}  properties"
    rule = "-" * len(header)
    return "\n".join([header, rule] + [line.render(width) for line in lines])


def explain(result: OptimizationResult) -> str:
    """Explain an optimization result: the plan plus search statistics."""
    parts = [
        f"goal: [{result.required}]   total cost: {result.cost}",
        "",
        explain_plan(result.plan),
        "",
        f"search: {result.stats}",
    ]
    return "\n".join(parts)
