"""Dynamic plans for incompletely specified queries.

One of the paper's five requirements (Section 1): the optimizer
generator "had to support flexible cost models that permit generating
dynamic plans for incompletely specified queries" — queries with
run-time parameters whose selectivities are unknown at optimization
time (the line of work Graefe & Cole later published as *Optimization of
Dynamic Query Evaluation Plans*).

The implementation here:

* :class:`Parameter` — a placeholder scalar usable inside predicates
  (``v <= ?p``); its selectivity is unknowable at optimization time.
* :class:`AssumedSelectivityEstimator` — a cost-model variant (the
  "flexible cost model") that prices parameterized predicates at an
  *assumed* selectivity.
* :func:`optimize_dynamic` — optimizes the query once per assumed
  selectivity bucket, deduplicates structurally identical plans, and
  packages the survivors with their validity ranges into a
  :class:`DynamicPlan`.
* :class:`DynamicPlan` — the choose-plan operator: at bind time it
  estimates the actual selectivity from the catalog statistics, picks
  the plan optimized for the nearest assumption, substitutes the
  parameter values, and (optionally) executes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.algebra.expressions import LogicalExpression
from repro.algebra.plans import PhysicalPlan
from repro.algebra.predicates import (
    Comparison,
    Conjunction,
    Disjunction,
    Literal,
    Negation,
    Predicate,
    Scalar,
)
from repro.algebra.properties import PhysProps
from repro.catalog.catalog import Catalog
from repro.catalog.selectivity import SelectivityDefaults, SelectivityEstimator
from repro.errors import PredicateError, ReproError
from repro.model.spec import ModelSpecification
from repro.search.engine import SearchOptions, VolcanoOptimizer

__all__ = [
    "Parameter",
    "AssumedSelectivityEstimator",
    "DynamicAlternative",
    "DynamicPlan",
    "optimize_dynamic",
]


@dataclass(frozen=True)
class Parameter(Scalar):
    """A run-time parameter placeholder inside a predicate."""

    name: str

    def columns(self):
        """Parameters reference no columns."""
        return frozenset()

    def evaluate(self, row):
        """Unbound parameters cannot be evaluated."""
        raise PredicateError(
            f"parameter ?{self.name} must be bound before evaluation"
        )

    def __str__(self) -> str:
        return f"?{self.name}"


def _predicate_parameters(predicate: Predicate) -> frozenset:
    names = set()

    def visit(node):
        if isinstance(node, Comparison):
            for side in (node.left, node.right):
                if isinstance(side, Parameter):
                    names.add(side.name)
        elif isinstance(node, (Conjunction, Disjunction)):
            for part in node.parts:
                visit(part)
        elif isinstance(node, Negation):
            visit(node.part)

    visit(predicate)
    return frozenset(names)


def bind_predicate(predicate: Predicate, values: Mapping[str, object]) -> Predicate:
    """Replace every :class:`Parameter` with a literal from ``values``."""

    def bind_scalar(scalar):
        if isinstance(scalar, Parameter):
            if scalar.name not in values:
                raise PredicateError(f"no value bound for ?{scalar.name}")
            return Literal(values[scalar.name])
        return scalar

    if isinstance(predicate, Comparison):
        return Comparison(
            predicate.op, bind_scalar(predicate.left), bind_scalar(predicate.right)
        )
    if isinstance(predicate, Conjunction):
        return Conjunction(
            tuple(bind_predicate(part, values) for part in predicate.parts)
        )
    if isinstance(predicate, Disjunction):
        return Disjunction(
            tuple(bind_predicate(part, values) for part in predicate.parts)
        )
    if isinstance(predicate, Negation):
        return Negation(bind_predicate(predicate.part, values))
    return predicate


def bind_plan(plan: PhysicalPlan, values: Mapping[str, object]) -> PhysicalPlan:
    """Substitute parameters throughout a plan's predicate arguments."""
    new_args = tuple(
        bind_predicate(arg, values) if isinstance(arg, Predicate) else arg
        for arg in plan.args
    )
    return PhysicalPlan(
        plan.algorithm,
        new_args,
        tuple(bind_plan(child, values) for child in plan.inputs),
        properties=plan.properties,
        cost=plan.cost,
        is_enforcer=plan.is_enforcer,
    )


class AssumedSelectivityEstimator(SelectivityEstimator):
    """Selectivity estimation under an assumed parameter selectivity.

    Any comparison involving a :class:`Parameter` estimates to
    ``assumption`` instead of consulting statistics — the knob the
    optimizer turns to produce one plan per selectivity regime.
    """

    def __init__(
        self,
        assumption: float,
        defaults: Optional[SelectivityDefaults] = None,
    ):
        super().__init__(defaults)
        self.assumption = assumption

    def _estimate_comparison(self, comparison, column_stats):
        if isinstance(comparison.left, Parameter) or isinstance(
            comparison.right, Parameter
        ):
            return self.assumption
        return super()._estimate_comparison(comparison, column_stats)


@dataclass
class DynamicAlternative:
    """One compiled alternative with its assumed-selectivity range."""

    plan: PhysicalPlan
    assumed: List[float]          # the bucket(s) this plan won
    estimated_cost: float         # at its first bucket


@dataclass
class DynamicPlan:
    """The choose-plan operator: alternatives plus the bind-time switch."""

    query: LogicalExpression
    required: PhysProps
    alternatives: List[DynamicAlternative]
    parameters: Tuple[str, ...]

    def pick(
        self, catalog: Catalog, values: Mapping[str, object]
    ) -> Tuple[PhysicalPlan, float]:
        """Choose the alternative for the bound parameter values.

        Estimates the true selectivity of every parameterized predicate
        from catalog statistics with the values substituted, then picks
        the alternative whose assumed bucket is nearest (log-scale).
        """
        import math

        actual = self._actual_selectivity(catalog, values)
        best = None
        best_distance = None
        for alternative in self.alternatives:
            for assumed in alternative.assumed:
                distance = abs(
                    math.log(max(assumed, 1e-6)) - math.log(max(actual, 1e-6))
                )
                if best_distance is None or distance < best_distance:
                    best, best_distance = alternative, distance
        plan = bind_plan(best.plan, values)
        return plan, actual

    def execute(self, catalog: Catalog, values: Mapping[str, object], stats=None):
        """Pick, bind, and run the plan; returns the result rows."""
        from repro.executor import execute_plan

        plan, _ = self.pick(catalog, values)
        return execute_plan(plan, catalog, stats)

    def _actual_selectivity(self, catalog, values) -> float:
        estimator = SelectivityEstimator()
        product = 1.0
        found = False
        for node in self.query.walk():
            for arg in node.args:
                if not isinstance(arg, Predicate):
                    continue
                if not _predicate_parameters(arg):
                    continue
                bound = bind_predicate(arg, values)
                stats = self._stats_for(catalog, node)
                product *= estimator.estimate(bound, stats)
                found = True
        return product if found else 1.0

    def _stats_for(self, catalog, node) -> Dict:
        tables = [
            inner.args[0]
            for inner in node.walk()
            if inner.operator == "get" and inner.args[0] in catalog
        ]
        stats = {}
        for table in tables:
            stats.update(catalog.table(table).statistics.columns)
        return stats

    def describe(self) -> str:
        """Human-readable summary of the alternatives and their buckets."""
        lines = [
            f"dynamic plan over parameters ({', '.join('?' + p for p in self.parameters)}), "
            f"{len(self.alternatives)} alternative(s):"
        ]
        for index, alternative in enumerate(self.alternatives):
            buckets = ", ".join(f"{value:g}" for value in alternative.assumed)
            lines.append(
                f"  [{index}] assumed selectivity {{{buckets}}} — "
                f"cost {alternative.estimated_cost:.1f}"
            )
            lines.append(
                "\n".join(
                    "      " + line
                    for line in alternative.plan.pretty(with_cost=False).splitlines()
                )
            )
        return "\n".join(lines)


DEFAULT_BUCKETS = (0.001, 0.01, 0.1, 0.5, 1.0)


def optimize_dynamic(
    spec: ModelSpecification,
    catalog: Catalog,
    query: LogicalExpression,
    required: Optional[PhysProps] = None,
    buckets: Sequence[float] = DEFAULT_BUCKETS,
    options: Optional[SearchOptions] = None,
) -> DynamicPlan:
    """Produce a dynamic plan for a parameterized query.

    Optimizes once per assumed selectivity in ``buckets``; structurally
    identical winners are merged, so the result usually holds only the
    two or three genuinely different strategies.
    """
    parameters = set()
    for node in query.walk():
        for arg in node.args:
            if isinstance(arg, Predicate):
                parameters |= _predicate_parameters(arg)
    if not parameters:
        raise ReproError(
            "query has no parameters; use a plain optimizer for fully "
            "specified queries"
        )
    required = required if required is not None else spec.any_props
    alternatives: List[DynamicAlternative] = []
    by_shape: Dict[str, DynamicAlternative] = {}
    for assumption in buckets:
        estimator = AssumedSelectivityEstimator(assumption)
        optimizer = VolcanoOptimizer(
            spec, catalog, options or SearchOptions(), estimator=estimator
        )
        result = optimizer.optimize(query, required)
        shape = result.plan.to_sexpr()
        existing = by_shape.get(shape)
        if existing is not None:
            existing.assumed.append(assumption)
            continue
        alternative = DynamicAlternative(
            plan=result.plan,
            assumed=[assumption],
            estimated_cost=result.cost.total(),
        )
        by_shape[shape] = alternative
        alternatives.append(alternative)
    return DynamicPlan(
        query=query,
        required=required,
        alternatives=alternatives,
        parameters=tuple(sorted(parameters)),
    )
