"""Workload generators (S16)."""

from repro.workloads.generator import (
    GeneratedQuery,
    QueryGenerator,
    SharedWorkload,
    WorkloadOptions,
)

__all__ = ["GeneratedQuery", "QueryGenerator", "SharedWorkload", "WorkloadOptions"]
