"""Workload generators (S16)."""

from repro.workloads.generator import (
    GeneratedQuery,
    QueryGenerator,
    WorkloadOptions,
)

__all__ = ["GeneratedQuery", "QueryGenerator", "WorkloadOptions"]
