"""Random select–join workloads in the style of the paper's Section 4.2.

"For each complexity level, we generated and optimized 50 queries" over
"relational select-join queries […] with 1 to 7 binary joins, i.e., 2 to
8 input relations, and as many selections as input relations", on "test
relations [of] 1,200 to 7,200 records of 100 bytes".

Each generated query gets its own deterministic set of relations (sizes
uniform in the paper's range) joined along a random spanning tree.  Every
relation carries two join-key columns (``a``, ``b``) with randomized
distinct counts — so join outputs grow or shrink query by query and
interesting orderings pay off for some queries and not others — plus a
selection column ``v`` and padding to 100 bytes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.algebra.expressions import LogicalExpression
from repro.algebra.predicates import Comparison, ComparisonOp, col, eq, lit
from repro.algebra.properties import ANY_PROPS, PhysProps, sorted_on
from repro.catalog.catalog import Catalog
from repro.catalog.schema import Column, ColumnType, Schema
from repro.catalog.statistics import ColumnStatistics, TableStatistics
from repro.errors import WorkloadError
from repro.models.relational import get, join, select

__all__ = ["WorkloadOptions", "GeneratedQuery", "SharedWorkload", "QueryGenerator"]

PAPER_MIN_ROWS = 1200
PAPER_MAX_ROWS = 7200
PAPER_ROW_WIDTH = 100


@dataclass(frozen=True)
class WorkloadOptions:
    """Workload shape knobs (defaults reproduce the paper's setup).

    ``order_by_probability``
        Fraction of queries that request sorted output — the paper's
        example of user-requested physical properties ("sort order as in
        the ORDER BY clause of SQL").  Figure 4's queries are plain
        select–join queries, so the default is 0.
    ``key_fraction_range``
        A join key's distinct count is ``rows × U(lo, hi)``; low
        fractions make join outputs grow, which is where merge-join
        chains (interesting orderings) beat hash-only plans.
    ``selectivity_range``
        Each relation's selection keeps a uniform fraction of its rows
        drawn from this range.
    ``shape``
        The join graph: ``"random"`` (a random spanning tree, the
        default), ``"chain"`` (R1–R2–…–Rn), or ``"star"`` (every
        relation joined to the first).
    """

    min_rows: int = PAPER_MIN_ROWS
    max_rows: int = PAPER_MAX_ROWS
    row_width: int = PAPER_ROW_WIDTH
    key_fraction_range: Tuple[float, float] = (0.25, 1.0)
    selectivity_range: Tuple[float, float] = (0.2, 1.0)
    order_by_probability: float = 0.0
    selections: bool = True
    shape: str = "random"

    def __post_init__(self):
        if self.min_rows > self.max_rows:
            raise WorkloadError("min_rows exceeds max_rows")
        if not 0.0 <= self.order_by_probability <= 1.0:
            raise WorkloadError("order_by_probability must be in [0, 1]")
        if self.shape not in ("random", "chain", "star"):
            raise WorkloadError(f"unknown workload shape {self.shape!r}")


@dataclass
class GeneratedQuery:
    """One workload instance: a fresh catalog plus the query over it."""

    catalog: Catalog
    query: LogicalExpression
    required: PhysProps
    n_relations: int
    seed: int
    table_names: List[str]


@dataclass
class SharedWorkload:
    """A query stream over one shared database.

    :meth:`QueryGenerator.generate` gives every query its own catalog —
    right for measuring the optimizer in isolation, wrong for exercising
    anything *cross-query* (the plan cache, subplan reuse).  A shared
    workload fixes the database once and draws every query's relations
    from it, so repeated and overlapping queries actually share tables,
    statistics, and fingerprints.
    """

    catalog: Catalog
    queries: List[GeneratedQuery]

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)


class QueryGenerator:
    """Deterministic random query generator (one RNG stream per seed)."""

    def __init__(self, options: Optional[WorkloadOptions] = None):
        self.options = options or WorkloadOptions()

    # ------------------------------------------------------------------

    def generate(self, n_relations: int, seed: int) -> GeneratedQuery:
        """One select–join query over ``n_relations`` fresh relations."""
        if n_relations < 1:
            raise WorkloadError("a query needs at least one relation")
        options = self.options
        rng = random.Random(f"workload:{seed}:{n_relations}")
        catalog = Catalog()
        names = [f"t{i}" for i in range(n_relations)]
        for name in names:
            self._add_table(catalog, name, rng)
        expression, required = self._build_query(catalog, names, rng)
        return GeneratedQuery(
            catalog=catalog,
            query=expression,
            required=required,
            n_relations=n_relations,
            seed=seed,
            table_names=names,
        )

    def generate_batch(
        self, n_relations: int, count: int, seed: int = 0
    ) -> List[GeneratedQuery]:
        """``count`` queries at one complexity level (50 in the paper)."""
        return [
            self.generate(n_relations, seed * 1_000_003 + index)
            for index in range(count)
        ]

    def generate_shared(
        self,
        count: int,
        seed: int = 0,
        n_tables: int = 8,
        relations: Tuple[int, int] = (2, 8),
    ) -> SharedWorkload:
        """``count`` queries over one shared ``n_tables``-table database.

        Each query draws between ``relations[0]`` and ``relations[1]``
        (capped at ``n_tables``) distinct relations from the shared
        catalog and joins them along a spanning tree per the configured
        shape.  Because the tables are shared, structurally identical
        queries recur — differing (if at all) only in their selection
        thresholds — which is exactly the stream a cross-query plan
        cache is built for.
        """
        if count < 1:
            raise WorkloadError("a workload needs at least one query")
        if n_tables < 1:
            raise WorkloadError("a shared workload needs at least one table")
        low, high = relations
        if low < 1 or low > high:
            raise WorkloadError(f"bad relations range {relations!r}")
        rng = random.Random(f"workload-shared:{seed}:{n_tables}")
        catalog = Catalog()
        names = [f"t{i}" for i in range(n_tables)]
        for name in names:
            self._add_table(catalog, name, rng)
        queries = []
        for index in range(count):
            query_rng = random.Random(f"workload-shared:{seed}:query:{index}")
            n_relations = query_rng.randint(low, min(high, n_tables))
            chosen = sorted(query_rng.sample(names, n_relations))
            expression, required = self._build_query(catalog, chosen, query_rng)
            queries.append(
                GeneratedQuery(
                    catalog=catalog,
                    query=expression,
                    required=required,
                    n_relations=n_relations,
                    seed=index,
                    table_names=chosen,
                )
            )
        return SharedWorkload(catalog=catalog, queries=queries)

    # ------------------------------------------------------------------

    def _build_query(
        self, catalog: Catalog, names: List[str], rng: random.Random
    ) -> Tuple[LogicalExpression, PhysProps]:
        """A select–join query over ``names``, joined per the shape."""
        options = self.options
        # Per-relation input expressions (selections per the paper).
        leaves = {}
        for name in names:
            leaf = get(name)
            if options.selections:
                leaf = select(leaf, self._selection_predicate(catalog, name, rng))
            leaves[name] = leaf

        # Spanning tree per the configured shape, built left-deep (the
        # optimizer reorders it anyway).
        expression = leaves[names[0]]
        joined = [names[0]]
        for name in names[1:]:
            if options.shape == "chain":
                partner = joined[-1]
            elif options.shape == "star":
                partner = joined[0]
            else:
                partner = rng.choice(joined)
            left_key = rng.choice(("a", "b"))
            right_key = rng.choice(("a", "b"))
            predicate = eq(f"{partner}.{left_key}", f"{name}.{right_key}")
            expression = join(expression, leaves[name], predicate)
            joined.append(name)

        required = ANY_PROPS
        if rng.random() < options.order_by_probability:
            table = rng.choice(names)
            key = rng.choice(("a", "b"))
            required = sorted_on(f"{table}.{key}")
        return expression, required

    def _add_table(self, catalog: Catalog, name: str, rng: random.Random) -> None:
        options = self.options
        rows = rng.randint(options.min_rows, options.max_rows)
        lo, hi = options.key_fraction_range
        schema = Schema(
            (
                Column(f"{name}.a", ColumnType.INTEGER),
                Column(f"{name}.b", ColumnType.INTEGER),
                Column(f"{name}.v", ColumnType.INTEGER),
                Column(
                    f"{name}.pad",
                    ColumnType.STRING,
                    width=max(1, options.row_width - 12),
                ),
            )
        )
        columns = {}
        for key in ("a", "b"):
            distinct = max(2, int(rows * rng.uniform(lo, hi)))
            columns[f"{name}.{key}"] = ColumnStatistics(distinct, 0, distinct - 1)
        columns[f"{name}.v"] = ColumnStatistics(1000, 0, 999)
        catalog.add_table(
            name,
            schema,
            TableStatistics(rows, options.row_width, columns=columns),
        )

    def _selection_predicate(self, catalog: Catalog, name: str, rng: random.Random):
        lo, hi = self.options.selectivity_range
        selectivity = rng.uniform(lo, hi)
        stats = catalog.table(name).statistics.column(f"{name}.v")
        threshold = int(stats.max_value * selectivity)
        return Comparison(ComparisonOp.LE, col(f"{name}.v"), lit(threshold))
