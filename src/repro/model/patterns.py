"""Tree patterns for transformation and implementation rules.

A pattern is a small tree of :class:`OpPattern` nodes (which must match a
specific logical operator) and :class:`AnyPattern` leaves (which match any
subexpression and bind it to a name).  Matching works in two contexts:

* against a plain :class:`LogicalExpression` tree (used by the EXODUS
  baseline and by tests) — each ``AnyPattern`` binds the actual subtree;
* against the memo — the top node is matched against a group expression
  and nested ``OpPattern`` nodes are matched against *every* expression of
  the corresponding input group, yielding one binding per combination
  (this is how the paper's rule "Figure 3: associativity" sees through
  equivalence classes).  ``AnyPattern`` leaves bind ``group_leaf`` markers.

``OpPattern.args_as`` binds the matched node's argument tuple, making it
available to condition code and rewrite functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.algebra.expressions import LogicalExpression, group_leaf
from repro.errors import PatternError

__all__ = [
    "Pattern",
    "OpPattern",
    "AnyPattern",
    "Binding",
    "match_tree",
    "match_memo",
    "pattern_leaves",
    "validate_pattern",
]


Binding = Dict[str, object]
"""Maps ``AnyPattern`` names to expressions and ``args_as`` names to tuples."""


class Pattern:
    """Base class for pattern nodes."""


@dataclass(frozen=True)
class AnyPattern(Pattern):
    """Matches any subexpression and binds it under ``name``."""

    name: str

    def __post_init__(self):
        if not self.name:
            raise PatternError("AnyPattern needs a non-empty name")

    def __str__(self) -> str:
        return f"?{self.name}"


@dataclass(frozen=True)
class OpPattern(Pattern):
    """Matches a node with a specific logical operator.

    ``args_as`` optionally binds the matched node's args tuple.
    """

    operator: str
    inputs: Tuple[Pattern, ...] = ()
    args_as: Optional[str] = None

    def __post_init__(self):
        if not self.operator:
            raise PatternError("OpPattern needs an operator name")
        if not isinstance(self.inputs, tuple):
            object.__setattr__(self, "inputs", tuple(self.inputs))

    def __str__(self) -> str:
        parts = [self.operator]
        if self.args_as:
            parts.append(f"[?{self.args_as}]")
        parts.extend(str(p) for p in self.inputs)
        return "(" + " ".join(parts) + ")"


def pattern_leaves(pattern: Pattern) -> Tuple[str, ...]:
    """Names of the ``AnyPattern`` leaves in left-to-right order."""
    if isinstance(pattern, AnyPattern):
        return (pattern.name,)
    names: Tuple[str, ...] = ()
    for sub in pattern.inputs:
        names += pattern_leaves(sub)
    return names


def validate_pattern(pattern: Pattern) -> None:
    """Reject duplicate binding names and non-Pattern nodes."""
    seen = set()

    def visit(node):
        if isinstance(node, AnyPattern):
            if node.name in seen:
                raise PatternError(f"duplicate pattern binding name: {node.name!r}")
            seen.add(node.name)
            return
        if not isinstance(node, OpPattern):
            raise PatternError(f"not a pattern node: {node!r}")
        if node.args_as is not None:
            if node.args_as in seen:
                raise PatternError(f"duplicate pattern binding name: {node.args_as!r}")
            seen.add(node.args_as)
        for sub in node.inputs:
            visit(sub)

    visit(pattern)


# ---------------------------------------------------------------------------
# Matching against a plain expression tree
# ---------------------------------------------------------------------------


def match_tree(pattern: Pattern, expression: LogicalExpression) -> Optional[Binding]:
    """Match a pattern against a plain tree; returns one binding or None."""
    binding: Binding = {}
    if _match_tree_into(pattern, expression, binding):
        return binding
    return None


def _match_tree_into(pattern, expression, binding) -> bool:
    if isinstance(pattern, AnyPattern):
        binding[pattern.name] = expression
        return True
    if pattern.operator != expression.operator:
        return False
    if len(pattern.inputs) != len(expression.inputs):
        return False
    if pattern.args_as is not None:
        binding[pattern.args_as] = expression.args
    return all(
        _match_tree_into(sub, node, binding)
        for sub, node in zip(pattern.inputs, expression.inputs)
    )


# ---------------------------------------------------------------------------
# Matching inside the memo
# ---------------------------------------------------------------------------


def match_memo(
    pattern: OpPattern,
    operator: str,
    args: Tuple,
    input_groups: Tuple[int, ...],
    expressions_of: Callable[[int], Iterator],
) -> Iterator[Binding]:
    """Match a pattern against a memo group expression.

    ``expressions_of(group_id)`` must yield the group's expressions as
    ``(operator, args, input_groups)`` triples.  Each yielded binding maps
    leaf names to ``group_leaf`` expressions and ``args_as`` names to
    argument tuples.  The caller (the search engine) is responsible for
    exploring input groups before matching, so that every equivalent
    expression is visible to nested pattern nodes.
    """
    if pattern.operator != operator or len(pattern.inputs) != len(input_groups):
        return
    base: Binding = {}
    if pattern.args_as is not None:
        base[pattern.args_as] = args
    yield from _match_inputs(pattern.inputs, input_groups, base, expressions_of)


def _match_inputs(patterns, groups, binding, expressions_of) -> Iterator[Binding]:
    if not patterns:
        yield dict(binding)
        return
    head, rest_patterns = patterns[0], patterns[1:]
    head_group, rest_groups = groups[0], groups[1:]
    if isinstance(head, AnyPattern):
        binding[head.name] = group_leaf(head_group)
        yield from _match_inputs(rest_patterns, rest_groups, binding, expressions_of)
        del binding[head.name]
        return
    # OpPattern one level down: try every expression of the input group.
    for operator, args, input_groups in expressions_of(head_group):
        if head.operator != operator or len(head.inputs) != len(input_groups):
            continue
        added = []
        if head.args_as is not None:
            binding[head.args_as] = args
            added.append(head.args_as)
        # Patterns nested deeper than two levels recurse the same way.
        for sub_binding in _match_inputs(
            head.inputs, input_groups, binding, expressions_of
        ):
            # sub_binding is a fresh copy holding everything in ``binding``.
            yield from _match_inputs(
                rest_patterns, rest_groups, sub_binding, expressions_of
            )
        for name in added:
            del binding[name]
