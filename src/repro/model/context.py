"""The optimizer context: what rule conditions and support functions see.

One context is created per optimization and threaded through every rule
condition, rewrite, applicability, cost, and property function.  It owns
logical-property derivation (with caching) for plain expression trees and
— when a memo is attached — for group-leaf references, so the same rule
code runs unchanged in the Volcano engine, the EXODUS baseline, and unit
tests.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.algebra.expressions import GROUP_LEAF, LogicalExpression
from repro.algebra.properties import LogicalProperties
from repro.catalog.catalog import Catalog
from repro.catalog.selectivity import SelectivityEstimator
from repro.errors import SearchError
from repro.model.spec import ModelSpecification

__all__ = ["OptimizerContext"]


class OptimizerContext:
    """Shared state for one optimization run."""

    def __init__(
        self,
        spec: ModelSpecification,
        catalog: Catalog,
        estimator: Optional[SelectivityEstimator] = None,
    ):
        self.spec = spec
        self.catalog = catalog
        self.estimator = estimator or SelectivityEstimator()
        # Installed by the search engine so that group leaves resolve to
        # their group's logical properties during pattern matching.
        self.group_props_resolver: Optional[Callable[[int], LogicalProperties]] = None
        self._props_cache: Dict[LogicalExpression, LogicalProperties] = {}

    # -- logical property derivation ---------------------------------------

    def derive_logical_props(
        self,
        operator: str,
        args: Tuple,
        input_props: Tuple[LogicalProperties, ...],
    ) -> LogicalProperties:
        """Apply the operator's property function (paper item 10)."""
        return self.spec.operator(operator).derive_props(self, args, input_props)

    def logical_props(self, expression: LogicalExpression) -> LogicalProperties:
        """Logical properties of an expression tree (cached).

        Group leaves are resolved through the search engine's resolver;
        using one outside an engine run is an internal error.
        """
        cached = self._props_cache.get(expression)
        if cached is not None:
            return cached
        if expression.operator == GROUP_LEAF:
            if self.group_props_resolver is None:
                raise SearchError(
                    "group leaf encountered outside a search engine run"
                )
            props = self.group_props_resolver(expression.args[0])
        else:
            input_props = tuple(
                self.logical_props(node) for node in expression.inputs
            )
            props = self.derive_logical_props(
                expression.operator, expression.args, input_props
            )
        self._props_cache[expression] = props
        return props

    # -- selectivity --------------------------------------------------------

    def selectivity(self, predicate, column_stats) -> float:
        """Estimate a predicate's selectivity against column statistics."""
        return self.estimator.estimate(predicate, column_stats)
