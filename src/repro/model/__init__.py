"""Model layer: cost ADT, patterns, rules, and the model specification (S5–S7)."""

from repro.model.context import OptimizerContext
from repro.model.cost import (
    INFINITE_COST,
    Cost,
    CpuIoCost,
    InfiniteCost,
    ResourceCost,
    ScalarCost,
)
from repro.model.patterns import AnyPattern, Binding, OpPattern, Pattern
from repro.model.rules import ImplementationRule, TransformationRule
from repro.model.spec import (
    VARIADIC,
    AlgorithmDef,
    AlgorithmNode,
    EnforcerApplication,
    EnforcerDef,
    LogicalOperatorDef,
    ModelSpecification,
)

__all__ = [
    "OptimizerContext",
    "INFINITE_COST",
    "Cost",
    "CpuIoCost",
    "InfiniteCost",
    "ResourceCost",
    "ScalarCost",
    "AnyPattern",
    "Binding",
    "OpPattern",
    "Pattern",
    "ImplementationRule",
    "TransformationRule",
    "VARIADIC",
    "AlgorithmDef",
    "AlgorithmNode",
    "EnforcerApplication",
    "EnforcerDef",
    "LogicalOperatorDef",
    "ModelSpecification",
]
