"""Transformation and implementation rules.

"The algebraic rules of expression equivalence, e.g., commutativity or
associativity, are specified using transformation rules.  The possible
mappings of operators to algorithms are specified using implementation
rules.  […]  Beyond simple pattern matching of operators and algorithms,
additional conditions may be specified with both kinds of rules.  This is
done by attaching condition code to a rule, which will be invoked after a
pattern match has succeeded."  (paper, Section 2.2)

Rules are plain data plus callables; the optimizer generator compiles
them into dispatch tables indexed by top operator (the moral equivalent
of the paper's "all strings were translated into integers, which ensured
very fast pattern matching").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Union

from repro.algebra.expressions import LogicalExpression
from repro.errors import RuleError
from repro.model.patterns import (
    Binding,
    OpPattern,
    pattern_leaves,
    validate_pattern,
)

__all__ = ["TransformationRule", "ImplementationRule"]


RewriteResult = Union[LogicalExpression, List[LogicalExpression], None]


@dataclass
class TransformationRule:
    """An algebraic equivalence: *pattern* ⇒ *rewrite(binding)*.

    ``rewrite``
        Called with the match binding and the optimizer context; returns a
        new logical expression (or a list of them, or None to decline).
        Leaves of the returned expression are the bound subexpressions
        taken from the binding, so the same rule works both on plain trees
        and inside the memo.
    ``condition``
        Optional condition code, invoked after the pattern match succeeds.
    ``promise``
        Relative desirability used to order moves (Section 3: "order the
        set of moves by promise").
    ``factor``
        The EXODUS-style *expected cost improvement factor*; the EXODUS
        baseline orders its forward-chaining queue by
        ``factor × current cost`` exactly as the paper describes (and
        criticizes).  Unused by the Volcano engine.
    """

    name: str
    pattern: OpPattern
    rewrite: Callable[[Binding, object], RewriteResult]
    condition: Optional[Callable[[Binding, object], bool]] = None
    promise: float = 1.0
    factor: float = 1.0

    def __post_init__(self):
        if not self.name:
            raise RuleError("transformation rule needs a name")
        if not isinstance(self.pattern, OpPattern):
            raise RuleError(
                f"rule {self.name!r}: the pattern root must be an OpPattern"
            )
        validate_pattern(self.pattern)

    @property
    def top_operator(self) -> str:
        return self.pattern.operator

    def applies(self, binding: Binding, context) -> bool:
        """Run the rule's condition code (True when absent)."""
        if self.condition is None:
            return True
        return bool(self.condition(binding, context))

    def __str__(self) -> str:
        return f"{self.name}: {self.pattern}"


@dataclass
class ImplementationRule:
    """A mapping from logical operator(s) to a physical algorithm.

    Patterns deeper than one level implement the paper's "complex
    mappings", e.g. a join followed by a projection implemented by a
    single physical operator: the plan node consumes the pattern's
    ``AnyPattern`` leaves as inputs, in left-to-right order.

    ``build_args``
        Computes the plan node's argument tuple from the binding; by
        default the matched top node's args are used unchanged.
    """

    name: str
    pattern: OpPattern
    algorithm: str
    condition: Optional[Callable[[Binding, object], bool]] = None
    build_args: Optional[Callable[[Binding, object], Tuple]] = None
    promise: float = 1.0

    def __post_init__(self):
        if not self.name:
            raise RuleError("implementation rule needs a name")
        if not self.algorithm:
            raise RuleError(f"rule {self.name!r}: algorithm name missing")
        if not isinstance(self.pattern, OpPattern):
            raise RuleError(
                f"rule {self.name!r}: the pattern root must be an OpPattern"
            )
        validate_pattern(self.pattern)

    @property
    def top_operator(self) -> str:
        return self.pattern.operator

    @property
    def input_names(self) -> Tuple[str, ...]:
        """Leaf names supplying the algorithm's inputs, left to right."""
        return pattern_leaves(self.pattern)

    def applies(self, binding: Binding, context) -> bool:
        """Run the rule's condition code (True when absent)."""
        if self.condition is None:
            return True
        return bool(self.condition(binding, context))

    def __str__(self) -> str:
        return f"{self.name}: {self.pattern} -> {self.algorithm}"
