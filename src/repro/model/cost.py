"""The abstract data type "cost".

"Cost is an abstract data type for the optimizer generator; therefore,
the optimizer implementor can choose cost to be a number (e.g., estimated
elapsed time), a record (e.g., estimated CPU time and I/O count), or any
other type.  Cost arithmetic and comparisons are performed by invoking
functions associated with the abstract data type 'cost'."  (paper,
Section 2.2)

Three implementations are bundled:

* :class:`ScalarCost` — one number (estimated elapsed time).
* :class:`CpuIoCost` — a (CPU, I/O) record compared through a weighted
  total, the System R style the paper cites.
* :class:`ResourceCost` — a CPU/I/O/memory record whose comparison weight
  for I/O depends on available main memory, the paper's "even a function,
  e.g., of the amount of available main memory".

All cost types share saturating arithmetic with :data:`INFINITE_COST`,
which the search engine uses as the initial branch-and-bound limit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelSpecError

__all__ = [
    "Cost",
    "ScalarCost",
    "CpuIoCost",
    "ResourceCost",
    "InfiniteCost",
    "INFINITE_COST",
]


class Cost:
    """Base class for cost values.

    Subclasses must implement ``total`` (a float used for comparisons),
    ``__add__`` and ``__sub__`` against their own type.  Comparisons
    against :data:`INFINITE_COST` work for every subclass.

    Comparisons read the cached ``_total`` float; the bundled cost types
    precompute it at construction and :data:`INFINITE_COST` pins it to
    ``+inf``, which makes the infinite-handling branches fall out of plain
    float comparison.  Subclasses defined outside this module need no
    cache: ``__getattr__`` lazily answers ``_total`` from ``total()``.
    """

    is_infinite = False
    _total: float  # cached total(); annotation only — filled per subclass

    def total(self) -> float:
        """A single comparable number summarizing this cost."""
        raise NotImplementedError

    def __getattr__(self, name: str) -> float:
        if name == "_total":
            return self.total()
        raise AttributeError(name)

    # Comparison operators are shared; ``_total`` is ``+inf`` for the
    # infinite cost, so IEEE float ordering gives the right answer for
    # every finite/infinite combination.

    def __lt__(self, other: "Cost") -> bool:
        return self._total < other._total

    def __le__(self, other: "Cost") -> bool:
        return self._total <= other._total

    def __gt__(self, other: "Cost") -> bool:
        return other._total < self._total

    def __ge__(self, other: "Cost") -> bool:
        return other._total <= self._total

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cost):
            return NotImplemented
        return self._total == other._total

    def __hash__(self):
        return hash(self.total())


class InfiniteCost(Cost):
    """The unreachable upper bound; arithmetic saturates."""

    _instance = None
    _total = float("inf")
    is_infinite = True

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def total(self) -> float:
        """Infinite cost summarizes to +inf."""
        return float("inf")

    def __add__(self, other: Cost) -> Cost:
        return self

    def __radd__(self, other: Cost) -> Cost:
        return self

    def __sub__(self, other: Cost) -> Cost:
        return self

    def __hash__(self):
        return hash(float("inf"))

    def __repr__(self) -> str:
        return "INFINITE_COST"

    def __str__(self) -> str:
        return "inf"


INFINITE_COST = InfiniteCost()


@dataclass(frozen=True, eq=False)
class ScalarCost(Cost):
    """Cost as one number, e.g. estimated elapsed seconds."""

    value: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "_total", self.value)

    def total(self) -> float:
        """The scalar value itself."""
        return self.value

    def __add__(self, other: Cost) -> Cost:
        if other.is_infinite:
            return INFINITE_COST
        if not isinstance(other, ScalarCost):
            raise ModelSpecError(
                f"cannot add ScalarCost and {type(other).__name__}"
            )
        return ScalarCost(self.value + other.value)

    def __sub__(self, other: Cost) -> Cost:
        if other.is_infinite:
            raise ModelSpecError("cannot subtract an infinite cost")
        if not isinstance(other, ScalarCost):
            raise ModelSpecError(
                f"cannot subtract {type(other).__name__} from ScalarCost"
            )
        return ScalarCost(self.value - other.value)

    def __hash__(self):
        return hash(self.value)

    def __str__(self) -> str:
        return f"{self.value:.3f}"


@dataclass(frozen=True, eq=False)
class CpuIoCost(Cost):
    """Cost as a (CPU, I/O) record, compared by a weighted total.

    The weight models how many CPU cost units one I/O is worth; the
    relational model's cost functions express CPU in per-tuple units and
    I/O in page accesses, so the default weight makes one page access as
    expensive as processing one page worth of tuples several times over —
    the I/O-dominant regime of 1993 hardware.
    """

    cpu: float = 0.0
    io: float = 0.0
    io_weight: float = 100.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "_total", self.cpu + self.io * self.io_weight)

    def total(self) -> float:
        """CPU plus weighted I/O."""
        return self._total

    def __add__(self, other: Cost) -> Cost:
        if other.is_infinite:
            return INFINITE_COST
        if not isinstance(other, CpuIoCost):
            raise ModelSpecError(f"cannot add CpuIoCost and {type(other).__name__}")
        return CpuIoCost(self.cpu + other.cpu, self.io + other.io, self.io_weight)

    def __sub__(self, other: Cost) -> Cost:
        if other.is_infinite:
            raise ModelSpecError("cannot subtract an infinite cost")
        if not isinstance(other, CpuIoCost):
            raise ModelSpecError(
                f"cannot subtract {type(other).__name__} from CpuIoCost"
            )
        return CpuIoCost(self.cpu - other.cpu, self.io - other.io, self.io_weight)

    def __hash__(self):
        return hash((self.cpu, self.io, self.io_weight))

    def __str__(self) -> str:
        return f"cpu={self.cpu:.1f} io={self.io:.1f} (total {self.total():.1f})"


@dataclass(frozen=True, eq=False)
class ResourceCost(Cost):
    """Cost as a CPU/I/O/memory record with a memory-dependent I/O weight.

    When plenty of main memory is available (``memory_bytes`` large
    relative to ``working_set``), intermediate results stay cached and
    I/O is discounted; when memory is scarce, I/O costs full price.  This
    demonstrates the paper's point that cost may be "a function, e.g.,
    of the amount of available main memory".
    """

    cpu: float = 0.0
    io: float = 0.0
    working_set: float = 0.0
    memory_bytes: float = 1 << 20
    base_io_weight: float = 100.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "_total", self.cpu + self.io * self._io_weight())

    def _io_weight(self) -> float:
        if self.memory_bytes <= 0:
            return self.base_io_weight
        pressure = min(1.0, self.working_set / self.memory_bytes)
        # Fully cached → 10% of the nominal I/O price; fully spilled → 100%.
        return self.base_io_weight * (0.1 + 0.9 * pressure)

    def total(self) -> float:
        """CPU plus memory-pressure-weighted I/O."""
        return self._total

    def __add__(self, other: Cost) -> Cost:
        if other.is_infinite:
            return INFINITE_COST
        if not isinstance(other, ResourceCost):
            raise ModelSpecError(
                f"cannot add ResourceCost and {type(other).__name__}"
            )
        return ResourceCost(
            self.cpu + other.cpu,
            self.io + other.io,
            max(self.working_set, other.working_set),
            self.memory_bytes,
            self.base_io_weight,
        )

    def __sub__(self, other: Cost) -> Cost:
        if other.is_infinite:
            raise ModelSpecError("cannot subtract an infinite cost")
        if not isinstance(other, ResourceCost):
            raise ModelSpecError(
                f"cannot subtract {type(other).__name__} from ResourceCost"
            )
        return ResourceCost(
            self.cpu - other.cpu,
            self.io - other.io,
            self.working_set,
            self.memory_bytes,
            self.base_io_weight,
        )

    def __hash__(self):
        return hash((self.cpu, self.io, self.working_set, self.memory_bytes))

    def __str__(self) -> str:
        return (
            f"cpu={self.cpu:.1f} io={self.io:.1f} ws={self.working_set:.0f}B "
            f"(total {self.total():.1f})"
        )
