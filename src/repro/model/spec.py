"""The model specification: the optimizer generator's input.

This is the paper's ten-item list (end of Section 2.2) in code form.  The
optimizer implementor provides:

1.  a set of logical operators                      → :class:`LogicalOperatorDef`
2.  algebraic transformation rules (+ conditions)   → :class:`TransformationRule`
3.  a set of algorithms and enforcers               → :class:`AlgorithmDef`, :class:`EnforcerDef`
4.  implementation rules (+ conditions)             → :class:`ImplementationRule`
5.  an ADT "cost" with arithmetic and comparison    → :mod:`repro.model.cost`
6.  an ADT "logical properties"                     → :class:`LogicalProperties`
7.  an ADT "physical property vector" (eq + cover)  → ``props_cover`` hook
8.  an applicability function per algorithm/enforcer→ ``AlgorithmDef.applicability`` / ``EnforcerDef.enforce``
9.  a cost function per algorithm/enforcer          → ``.cost``
10. a property function per operator/algorithm/enf. → ``.derive_props`` / ``LogicalOperatorDef.derive_props``
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.algebra.properties import ANY_PROPS, LogicalProperties, PhysProps
from repro.errors import ModelSpecError
from repro.model.cost import Cost, ScalarCost
from repro.model.rules import ImplementationRule, TransformationRule

__all__ = [
    "VARIADIC",
    "LogicalOperatorDef",
    "AlgorithmNode",
    "AlgorithmDef",
    "EnforcerApplication",
    "EnforcerDef",
    "ModelSpecification",
]

VARIADIC = None
"""Arity marker for operators with any number of inputs."""


# Property *components* are short declarative labels naming one dimension
# of the physical property vector: ``"sort"``, ``"partitioning"``, or
# ``"flag:<name>"`` for model-defined flags.  They are introspection
# hints only — the search engine never reads them — consumed by
# ``repro.lint`` to check the paper's enforcer completeness condition
# (every component an algorithm can require must be producible by some
# algorithm or enforcer) without running a search.
PropertyComponent = str


def _component_set(components: Optional[Iterable[str]]) -> FrozenSet[str]:
    return frozenset(components or ())


@dataclass
class LogicalOperatorDef:
    """A logical algebra operator.

    ``derive_props(context, args, input_props)`` returns the
    :class:`LogicalProperties` of the operator's output; it encapsulates
    schema derivation and selectivity estimation (paper Section 2.2).
    """

    name: str
    arity: Optional[int]
    derive_props: Callable[[object, Tuple, Tuple[LogicalProperties, ...]], LogicalProperties]

    def __post_init__(self):
        if not self.name:
            raise ModelSpecError("logical operator needs a name")
        if self.arity is not None and self.arity < 0:
            raise ModelSpecError(f"operator {self.name!r}: negative arity")

    @property
    def is_leaf(self) -> bool:
        return self.arity == 0


@dataclass(frozen=True)
class AlgorithmNode:
    """What cost and property functions see: one algorithm application.

    ``args`` are the plan node's arguments; ``output`` the logical
    properties of the result; ``inputs`` the logical properties of each
    input.  (Costs depend on logical properties — cardinalities, widths —
    not on the input plans themselves; input plan costs are added by the
    search engine, per Figure 2's ``TotalCost``.)
    """

    args: Tuple
    output: LogicalProperties
    inputs: Tuple[LogicalProperties, ...] = ()


# An applicability result: for each way the algorithm can satisfy the
# required properties, the physical property vector each input must
# satisfy.  Several entries implement the paper's "number of physical
# property vectors to be tried" (e.g. both sort orders for intersection).
InputRequirements = Tuple[PhysProps, ...]


@dataclass
class AlgorithmDef:
    """A query processing algorithm of the physical algebra.

    ``applicability(context, node, required)``
        Returns a list of :data:`InputRequirements` alternatives, or an
        empty list / None when the algorithm cannot deliver the required
        physical properties ("hybrid hash join does not qualify [for
        sorted output] while merge-join qualifies with the requirement
        that its inputs be sorted").
    ``cost(context, node)``
        The algorithm's *local* cost; the engine adds input plan costs.
    ``derive_props(context, node, input_props)``
        The physical properties actually delivered, given the properties
        the chosen input plans deliver.
    ``requires`` / ``delivers``
        Declarative :data:`PropertyComponent` hints: components this
        algorithm's applicability function may *newly* demand of its
        inputs, and components its output can provide.  Optional; used
        by ``repro.lint`` for the enforcer completeness check.
    ``utility``
        True for algorithms planted by passes *outside* the search
        (e.g. the multi-query sharing pass's ``materialize`` /
        ``scan_intermediate``): no implementation rule targets them by
        design, so ``repro.lint`` skips its dead-algorithm check.
    """

    name: str
    applicability: Callable[[object, AlgorithmNode, PhysProps], Optional[List[InputRequirements]]]
    cost: Callable[[object, AlgorithmNode], Cost]
    derive_props: Callable[[object, AlgorithmNode, Tuple[PhysProps, ...]], PhysProps]
    requires: FrozenSet[PropertyComponent] = frozenset()
    delivers: FrozenSet[PropertyComponent] = frozenset()
    utility: bool = False

    def __post_init__(self):
        if not self.name:
            raise ModelSpecError("algorithm needs a name")
        self.requires = _component_set(self.requires)
        self.delivers = _component_set(self.delivers)


@dataclass(frozen=True)
class EnforcerApplication:
    """One way an enforcer can help with a required property vector.

    ``delivered``
        What the enforcer's output provides (given an input that
        satisfies ``relaxed``).
    ``relaxed``
        The property vector the enforcer's input is optimized for —
        the original requirement minus the enforced property ("the
        original logical expression is optimized using FindBestPlan with
        a suitably modified (i.e., relaxed) physical property vector").
    ``excluded``
        The *excluding physical property vector*: algorithms able to
        satisfy it must not be considered for the enforcer's input
        ("since merge-join is able to satisfy the excluding properties,
        it would not be considered a suitable algorithm for the sort
        input").
    """

    args: Tuple
    delivered: PhysProps
    relaxed: PhysProps
    excluded: PhysProps


@dataclass
class EnforcerDef:
    """An operator that enforces physical properties (sort, exchange, …).

    "There are some operators in the physical algebra that do not
    correspond to any operator in the logical algebra […] to enforce
    physical properties in their outputs."  (paper, Section 2.2)

    ``enforce(context, required, output_props)`` returns the list of
    :class:`EnforcerApplication` this enforcer offers for a required
    vector (usually zero or one).  ``cost(context, node)`` is its local
    cost.  ``provides`` declares the :data:`PropertyComponent` labels
    this enforcer can establish (introspection hint for ``repro.lint``).
    """

    name: str
    enforce: Callable[[object, PhysProps, LogicalProperties], List[EnforcerApplication]]
    cost: Callable[[object, AlgorithmNode], Cost]
    provides: FrozenSet[PropertyComponent] = frozenset()

    def __post_init__(self):
        if not self.name:
            raise ModelSpecError("enforcer needs a name")
        self.provides = _component_set(self.provides)


def _default_cover(provided: PhysProps, required: PhysProps) -> bool:
    """The default cover relation: delegate to :meth:`PhysProps.covers`."""
    return provided.covers(required)


@dataclass
class ModelSpecification:
    """Everything the optimizer generator needs to produce an optimizer."""

    name: str
    operators: Dict[str, LogicalOperatorDef] = field(default_factory=dict)
    algorithms: Dict[str, AlgorithmDef] = field(default_factory=dict)
    enforcers: Dict[str, EnforcerDef] = field(default_factory=dict)
    transformations: List[TransformationRule] = field(default_factory=list)
    implementations: List[ImplementationRule] = field(default_factory=list)
    zero_cost: Callable[[], Cost] = ScalarCost
    props_cover: Callable[[PhysProps, PhysProps], bool] = _default_cover
    any_props: PhysProps = ANY_PROPS

    # -- registration helpers --------------------------------------------

    def add_operator(self, operator: LogicalOperatorDef) -> LogicalOperatorDef:
        """Register a logical operator (duplicate names rejected)."""
        if operator.name in self.operators:
            raise ModelSpecError(f"duplicate operator: {operator.name!r}")
        self.operators[operator.name] = operator
        return operator

    def add_algorithm(self, algorithm: AlgorithmDef) -> AlgorithmDef:
        """Register an algorithm (duplicate names rejected)."""
        if algorithm.name in self.algorithms or algorithm.name in self.enforcers:
            raise ModelSpecError(f"duplicate algorithm: {algorithm.name!r}")
        self.algorithms[algorithm.name] = algorithm
        return algorithm

    def add_enforcer(self, enforcer: EnforcerDef) -> EnforcerDef:
        """Register an enforcer (duplicate names rejected)."""
        if enforcer.name in self.enforcers or enforcer.name in self.algorithms:
            raise ModelSpecError(f"duplicate enforcer: {enforcer.name!r}")
        self.enforcers[enforcer.name] = enforcer
        return enforcer

    def add_transformation(self, rule: TransformationRule) -> TransformationRule:
        """Register a transformation rule."""
        self.transformations.append(rule)
        return rule

    def add_implementation(self, rule: ImplementationRule) -> ImplementationRule:
        """Register an implementation rule."""
        self.implementations.append(rule)
        return rule

    # -- lookup ------------------------------------------------------------

    def operator(self, name: str) -> LogicalOperatorDef:
        """Look up a logical operator by name."""
        try:
            return self.operators[name]
        except KeyError:
            raise ModelSpecError(f"unknown logical operator: {name!r}") from None

    def algorithm(self, name: str) -> AlgorithmDef:
        """Look up an algorithm by name."""
        try:
            return self.algorithms[name]
        except KeyError:
            raise ModelSpecError(f"unknown algorithm: {name!r}") from None

    def enforcer(self, name: str) -> EnforcerDef:
        """Look up an enforcer by name."""
        try:
            return self.enforcers[name]
        except KeyError:
            raise ModelSpecError(f"unknown enforcer: {name!r}") from None

    def enforcer_applications(
        self,
        name: str,
        context: object,
        required: PhysProps,
        output_props: LogicalProperties,
    ) -> List[EnforcerApplication]:
        """Run an enforcer's ``enforce`` hook and validate its promises.

        The search engines call enforcers through this accessor so that a
        model bug — an enforcer returning an application whose
        ``delivered`` vector does not actually satisfy the ``required``
        vector it was asked for, or one that fails to relax the goal —
        surfaces as a :class:`ModelSpecError` naming the enforcer,
        instead of a wrong plan or an unbounded search.
        """
        enforcer = self.enforcer(name)
        applications = list(enforcer.enforce(context, required, output_props) or ())
        for application in applications:
            if not self.props_cover(application.delivered, required):
                raise ModelSpecError(
                    f"enforcer {name!r} returned an application delivering "
                    f"[{application.delivered}], which does not satisfy the "
                    f"required vector [{required}] it was asked to enforce"
                )
            if application.relaxed == required:
                raise ModelSpecError(
                    f"enforcer {name!r} did not relax the goal [{required}]; "
                    f"optimizing its input would recurse forever"
                )
        return applications

    def transformations_for(self, operator_name: str) -> List[TransformationRule]:
        """Transformation rules whose pattern root is ``operator_name``."""
        return [
            rule for rule in self.transformations if rule.top_operator == operator_name
        ]

    def implementations_for(self, operator_name: str) -> List[ImplementationRule]:
        """Implementation rules whose pattern root is ``operator_name``."""
        return [
            rule for rule in self.implementations if rule.top_operator == operator_name
        ]

    # -- validation ---------------------------------------------------------

    def validate(self) -> None:
        """Check the specification for completeness and consistency.

        Raises :class:`ModelSpecError` describing every problem found.
        This is the front half of the paper's generator: a specification
        that does not validate cannot be turned into an optimizer.
        """
        problems: List[str] = []
        if not self.name:
            problems.append("specification needs a name")
        if not self.operators:
            problems.append("no logical operators declared")
        if not self.algorithms:
            problems.append("no algorithms declared")
        for rule in self.transformations:
            problems.extend(self._check_pattern_operators(rule.name, rule.pattern))
        implemented = set()
        for rule in self.implementations:
            problems.extend(self._check_pattern_operators(rule.name, rule.pattern))
            if rule.algorithm not in self.algorithms:
                problems.append(
                    f"implementation rule {rule.name!r} targets unknown "
                    f"algorithm {rule.algorithm!r}"
                )
            implemented.add(rule.top_operator)
        for name, operator in self.operators.items():
            if operator.derive_props is None:
                problems.append(f"operator {name!r} has no property function")
            if name not in implemented:
                problems.append(
                    f"operator {name!r} has no implementation rule; no plan "
                    f"can contain it"
                )
        if problems:
            raise ModelSpecError(
                f"invalid model specification {self.name!r}:\n  - "
                + "\n  - ".join(problems)
            )

    def _check_pattern_operators(self, rule_name: str, pattern) -> List[str]:
        problems = []
        # Local import to avoid a cycle at module load time.
        from repro.model.patterns import AnyPattern, OpPattern

        def visit(node):
            if isinstance(node, AnyPattern):
                return
            if not isinstance(node, OpPattern):
                problems.append(f"rule {rule_name!r}: bad pattern node {node!r}")
                return
            operator = self.operators.get(node.operator)
            if operator is None:
                problems.append(
                    f"rule {rule_name!r}: pattern references unknown "
                    f"operator {node.operator!r}"
                )
            elif operator.arity is not None and operator.arity != len(node.inputs):
                problems.append(
                    f"rule {rule_name!r}: pattern gives {node.operator!r} "
                    f"{len(node.inputs)} inputs but its arity is {operator.arity}"
                )
            for sub in node.inputs:
                visit(sub)

        visit(pattern)
        return problems
