"""Admission control for the optimizer server.

A long-lived optimizer service has one scarce resource: engine runs.
Directed dynamic programming is CPU-bound and (per query) seconds-long
in the worst case; letting every incoming request start one would melt
the box and — worse — build an invisible backlog whose requests all
eventually time out anyway.  The standard remedy is **admission
control with fast-fail**: a hard bound on concurrent optimizations, a
short bounded queue for bursts, and an immediate 429 for everything
beyond it, so clients learn *now* that they should back off.

:class:`AdmissionController` implements that for the asyncio server.
It runs entirely on the event loop (no locks needed: between awaits,
state mutations are atomic), hands out slots FIFO, and supports
graceful drain for shutdown.  Cache *hits* are not admitted through it
— the server only charges requests that may run the engine.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, Dict, Optional

from repro.errors import AdmissionError
from repro.options import ServerOptions

__all__ = ["AdmissionController"]


class AdmissionController:
    """Bounded concurrency + bounded FIFO queue + fast-fail overflow.

    ``async with controller.slot():`` around the work; requests beyond
    ``max_concurrent`` wait in a queue of at most ``max_queue_depth``,
    for at most ``queue_timeout_seconds`` (tightened per-request via
    ``timeout=``); both overflows raise
    :class:`~repro.errors.AdmissionError` (HTTP 429) immediately.
    """

    def __init__(self, options: Optional[ServerOptions] = None) -> None:
        self.options = options or ServerOptions()
        self._active = 0
        self._waiters: Deque["asyncio.Future[None]"] = deque()
        self._drained = asyncio.Event()
        self._drained.set()
        self.admitted = 0
        self.rejected_busy = 0
        self.rejected_timeout = 0

    @property
    def active(self) -> int:
        """Requests currently holding a slot."""
        return self._active

    @property
    def queued(self) -> int:
        """Requests currently waiting for a slot."""
        return len(self._waiters)

    async def acquire(self, timeout: Optional[float] = None) -> None:
        """Take a slot, waiting in the bounded queue if none is free.

        ``timeout`` overrides (tightens or loosens) the configured
        queue timeout for this one request — the per-request deadline
        propagated from the client.  Raises
        :class:`~repro.errors.AdmissionError` when the queue is full
        or the wait expires.
        """
        if self._active < self.options.max_concurrent and not self._waiters:
            self._grant()
            return
        if len(self._waiters) >= self.options.max_queue_depth:
            self.rejected_busy += 1
            raise AdmissionError(
                f"server busy: {self._active} optimizations in flight, "
                f"queue of {len(self._waiters)} full",
                reason="queue_full",
            )
        future: "asyncio.Future[None]" = asyncio.get_running_loop().create_future()
        self._waiters.append(future)
        wait = timeout if timeout is not None else self.options.queue_timeout_seconds
        try:
            await asyncio.wait_for(future, timeout=wait)
        except asyncio.TimeoutError:
            # wait_for cancelled the future, so release() will skip it;
            # just drop it from the queue if it is still there.
            try:
                self._waiters.remove(future)
            except ValueError:
                pass
            self.rejected_timeout += 1
            raise AdmissionError(
                f"timed out after {wait:.1f}s waiting for an optimization "
                "slot",
                reason="timeout",
            ) from None

    def release(self) -> None:
        """Return a slot; the oldest live waiter (if any) inherits it."""
        while self._waiters:
            future = self._waiters.popleft()
            if future.cancelled():
                continue
            # The slot transfers: _active is unchanged, the waiter runs.
            self.admitted += 1
            future.set_result(None)
            return
        self._active -= 1
        if self._active == 0:
            self._drained.set()

    def _grant(self) -> None:
        self._active += 1
        self.admitted += 1
        self._drained.clear()

    def slot(self, timeout: Optional[float] = None) -> "_Slot":
        """An ``async with`` guard: acquire on entry, release on exit."""
        return _Slot(self, timeout)

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait for every admitted request to finish; True when drained.

        Shutdown calls this after the listener stops accepting; queued
        waiters still get their turn (they were already admitted to the
        queue), so a drain bounds *new* work, not promised work.
        """
        try:
            await asyncio.wait_for(self._drained.wait(), timeout=timeout)
            return True
        except asyncio.TimeoutError:
            return False

    def counters(self) -> Dict[str, int]:
        """JSON-ready snapshot for the stats endpoint."""
        return {
            "active": self._active,
            "queued": len(self._waiters),
            "max_concurrent": self.options.max_concurrent,
            "max_queue_depth": self.options.max_queue_depth,
            "admitted": self.admitted,
            "rejected_busy": self.rejected_busy,
            "rejected_timeout": self.rejected_timeout,
        }


class _Slot:
    """Context manager pairing one acquire with exactly one release."""

    def __init__(self, controller: AdmissionController, timeout: Optional[float]):
        self._controller = controller
        self._timeout = timeout

    async def __aenter__(self) -> AdmissionController:
        await self._controller.acquire(self._timeout)
        return self._controller

    async def __aexit__(self, exc_type, exc, tb) -> None:
        self._controller.release()
