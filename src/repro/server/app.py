"""The long-lived optimizer server: asyncio HTTP/JSON over the service.

:class:`OptimizerServer` promotes an
:class:`~repro.service.OptimizerService` from a library object to a
process boundary: a small HTTP/1.1 server (stdlib asyncio streams, no
framework) that many clients share.  The division of labor:

* the **event loop** parses requests, runs admission control
  (:class:`~repro.server.admission.AdmissionController`), and writes
  responses — it never blocks on optimization;
* a **thread pool** runs the CPU-bound work (translation, engine
  runs, plan execution); the service underneath is thread-safe (locked
  cache, single-flight deduplication), so concurrent requests share
  one plan cache correctly;
* the **plan registry** (:class:`~repro.server.registry.PlanRegistry`)
  sits in front of the service: pinned keys are served without
  touching the optimizer at all, and every fresh answer is routed
  through the regression guard before it reaches the wire.

Endpoints (all bodies JSON):

====================  ====================================================
``GET  /health``      liveness + catalog statistics version
``GET  /stats``       cache counters, admission counters, registry state
``GET  /plans``       pins, quarantined refreshes, recent events
``POST /optimize``    ``{"sql": ...}`` (+ hints) → plan payload
``POST /execute``     optimize + run the plan + feedback round trip
``POST /prepare``     parameterize a SQL statement server-side
``POST /bind``        bind parameters to a prepared statement → plan
``POST /batch``       ``{"queries": [...]}`` → multi-query optimization
``POST /plans/pin``   pin the served plan for a query
``POST /plans/unpin`` lift a pin (operator pins and guard rollbacks)
``POST /admin/statistics``  update one table's statistics (versioned)
``POST /admin/shutdown``    begin graceful drain
====================  ====================================================

Per-request **hints** ride as top-level fields of any optimize-like
body: ``engine`` selects among the server's configured engines (which
share one plan cache — post-PR8 both memo engines produce
byte-identical plans, so a cross-engine hit is sound), ``kernel`` /
``promise`` / ``budget`` steer that one run
(:class:`~repro.options.QueryHints`), and ``deadline_seconds`` bounds
the whole request — queue wait included; whatever remains after
admission becomes the optimization's wall-clock budget.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.catalog.statistics import ColumnStatistics, TableStatistics
from repro.errors import ReproError, ServerError
from repro.options import QueryHints, ResourceBudget, ServerOptions
from repro.server.admission import AdmissionController
from repro.server.protocol import (
    executed_payload,
    parse_budget,
    parse_hints,
    require,
    served_payload,
)
from repro.server.registry import PlanRegistry, stable_key
from repro.service.service import OptimizerService, PreparedQuery, ServedResult
from repro.sql.normalize import bind_expression, normalize_literals

__all__ = ["OptimizerServer", "ServerThread"]

_MAX_BODY = 4 * 1024 * 1024


class OptimizerServer:
    """One optimizer service (or several engines over one cache), served.

    ``engines`` maps additional engine names to services; they are
    rewired to share the primary's plan cache, subplan library,
    feedback store, and single-flight table, so an ``engine`` hint
    changes which search runs on a miss but never forks the cache.
    All services must front the same catalog.
    """

    def __init__(
        self,
        service: OptimizerService,
        *,
        options: Optional[ServerOptions] = None,
        engines: Optional[Mapping[str, OptimizerService]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.options = options or ServerOptions()
        self.host = host
        self.port = port
        self.engines: Dict[str, OptimizerService] = {}
        for name, engine_service in (engines or {}).items():
            if engine_service.catalog is not service.catalog:
                raise ServerError(
                    f"engine {name!r} fronts a different catalog"
                )
            # Shared state: one cache, one dedup table, one feedback
            # store across every engine — the whole point of the
            # byte-identical plan guarantee.
            engine_service.cache = service.cache
            engine_service.subplans = service.subplans
            engine_service.feedback = service.feedback
            engine_service.single_flight = service.single_flight
            self.engines[name] = engine_service
        self.admission = AdmissionController(self.options)
        self.registry = PlanRegistry(options=self.options)
        self._executor = ThreadPoolExecutor(
            max_workers=self.options.workers,
            thread_name_prefix="repro-server",
        )
        self._statements: Dict[str, Tuple[PreparedQuery, Any]] = {}
        self._statements_lock = threading.Lock()
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        self._connection_tasks: set = set()
        self._shutdown = asyncio.Event()
        self._started = time.time()
        self.requests = 0
        self.errors = 0
        self._routes: Dict[
            Tuple[str, str], Callable[[Mapping[str, Any]], Any]
        ] = {
            ("GET", "/health"): self._handle_health,
            ("GET", "/stats"): self._handle_stats,
            ("GET", "/plans"): self._handle_plans,
            ("POST", "/optimize"): self._handle_optimize,
            ("POST", "/execute"): self._handle_execute,
            ("POST", "/prepare"): self._handle_prepare,
            ("POST", "/bind"): self._handle_bind,
            ("POST", "/batch"): self._handle_batch,
            ("POST", "/plans/pin"): self._handle_pin,
            ("POST", "/plans/unpin"): self._handle_unpin,
            ("POST", "/admin/statistics"): self._handle_statistics,
            ("POST", "/admin/shutdown"): self._handle_shutdown,
        }

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections (non-blocking)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` (or ``/admin/shutdown``)."""
        if self._server is None:
            await self.start()
        await self._shutdown.wait()
        await self._drain_and_close()

    async def shutdown(self) -> None:
        """Stop accepting, drain in-flight requests, tear down."""
        self._shutdown.set()
        await self._drain_and_close()

    async def _drain_and_close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Graceful drain: admitted optimizations get drain_seconds to
        # finish; the executor then shuts down without cancelling them
        # (they hold no loop resources).
        await self.admission.drain(timeout=self.options.drain_seconds)
        # Idle keep-alive connections sit in a read; closing their
        # transports delivers EOF and their handler tasks exit cleanly.
        for writer in list(self._connections):
            writer.close()
        tasks = [t for t in self._connection_tasks if not t.done()]
        if tasks:
            _done, pending = await asyncio.wait(tasks, timeout=1.0)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        self._executor.shutdown(wait=True, cancel_futures=True)

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- connection handling -------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._connection_tasks.add(task)
        try:
            while not self._shutdown.is_set():
                try:
                    request = await asyncio.wait_for(
                        self._read_request(reader),
                        timeout=self.options.request_timeout_seconds,
                    )
                except asyncio.TimeoutError:
                    break
                except ServerError as error:
                    # Unparseable request: answer, then drop the
                    # connection — framing can no longer be trusted.
                    self.errors += 1
                    data = json.dumps({"error": str(error)}).encode("utf-8")
                    writer.write(
                        (
                            f"HTTP/1.1 {error.status} "
                            f"{_REASONS.get(error.status, 'Bad Request')}\r\n"
                            f"Content-Type: application/json\r\n"
                            f"Content-Length: {len(data)}\r\n"
                            "Connection: close\r\n"
                            "\r\n"
                        ).encode("ascii")
                        + data
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = headers.get("connection", "keep-alive") != "close"
                status, payload = await self._dispatch(method, path, body)
                data = json.dumps(payload).encode("utf-8")
                head = (
                    f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                    f"Content-Type: application/json\r\n"
                    f"Content-Length: {len(data)}\r\n"
                    f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
                    "\r\n"
                ).encode("ascii")
                writer.write(head + data)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections.discard(writer)
            if task is not None:
                self._connection_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, RuntimeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], Mapping[str, Any]]]:
        """One HTTP/1.1 request off the stream, or None at EOF."""
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode("ascii").split(None, 2)
        except ValueError:
            raise ServerError("malformed request line") from None
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip().lower()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            raise ServerError("request body too large", status=413)
        body: Mapping[str, Any] = {}
        if length:
            raw_body = await reader.readexactly(length)
            try:
                parsed = json.loads(raw_body)
            except json.JSONDecodeError as error:
                raise ServerError(f"invalid JSON body: {error}") from None
            if not isinstance(parsed, Mapping):
                raise ServerError("request body must be a JSON object")
            body = parsed
        path = target.split("?", 1)[0]
        return method.upper(), path, headers, body

    async def _dispatch(
        self, method: str, path: str, body: Mapping[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        self.requests += 1
        handler = self._routes.get((method, path))
        if handler is None:
            if any(route_path == path for _, route_path in self._routes):
                return 405, {"error": f"method {method} not allowed on {path}"}
            return 404, {"error": f"no such endpoint: {path}"}
        try:
            payload = handler(body)
            if asyncio.iscoroutine(payload):
                payload = await payload
            return 200, payload
        except ServerError as error:
            self.errors += 1
            response = {"error": str(error)}
            reason = getattr(error, "reason", None)
            if reason is not None:
                response["reason"] = reason
            return error.status, response
        except ReproError as error:
            self.errors += 1
            return 400, {"error": f"{type(error).__name__}: {error}"}
        except Exception as error:  # pragma: no cover - defensive
            self.errors += 1
            return 500, {"error": f"internal error: {error}"}

    # -- shared request plumbing ---------------------------------------

    def _service_for(self, hints: Optional[QueryHints]) -> OptimizerService:
        if hints is None or hints.engine is None:
            return self.service
        engine_service = self.engines.get(hints.engine)
        if engine_service is None:
            known = sorted(self.engines)
            raise ServerError(
                f"unknown engine {hints.engine!r}; configured: {known}"
            )
        return engine_service

    async def _in_thread(self, fn: Callable[[], Any]) -> Any:
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, fn
        )

    async def _resolve(
        self, service: OptimizerService, sql: str
    ) -> Tuple[PreparedQuery, str]:
        """SQL → (prepared query, stable plan-management key)."""
        prepared = await self._in_thread(lambda: service.prepare(sql))
        return prepared, stable_key(prepared.expression, prepared.props)

    def _request_budget(
        self,
        body: Mapping[str, Any],
        hints: Optional[QueryHints],
        started: float,
    ) -> Optional[ResourceBudget]:
        """Fold the request deadline's remainder into the run budget."""
        deadline = body.get("deadline_seconds")
        budget = parse_budget(body.get("budget"))
        if budget is None and hints is not None:
            budget = hints.budget
        if deadline is None:
            return budget
        if not isinstance(deadline, (int, float)) or deadline <= 0:
            raise ServerError("deadline_seconds must be a positive number")
        remaining = max(0.05, float(deadline) - (time.monotonic() - started))
        if budget is None:
            return ResourceBudget(deadline_seconds=remaining)
        if budget.deadline_seconds is not None:
            remaining = min(remaining, budget.deadline_seconds)
        return budget.replace(deadline_seconds=remaining)

    def _admission_timeout(self, body: Mapping[str, Any]) -> Optional[float]:
        deadline = body.get("deadline_seconds")
        if isinstance(deadline, (int, float)) and deadline > 0:
            return min(float(deadline), self.options.queue_timeout_seconds)
        return None

    def _guarded(
        self, served: ServedResult, key: str
    ) -> Tuple[ServedResult, bool, Optional[Dict[str, Any]]]:
        """Route a service answer through pin + regression guard.

        Returns ``(to_serve, pinned, guard_info)``.  Fresh non-degraded
        answers are admitted to the registry; a rollback decision swaps
        the served plan for the incumbent's.
        """
        if served.cached or served.degraded:
            return served, False, None
        decision = self.registry.admit(
            key,
            served.plan,
            _total(served.cost),
            served.required,
            certificate=served.certificate,
            statistics_version=self.service.catalog.statistics_version,
        )
        guard = {
            "action": decision.action,
            "allowed": decision.allowed,
            "detail": decision.detail,
        }
        if decision.rolled_back:
            served = dataclasses.replace(
                served, plan=decision.plan, result=None
            )
            return served, True, guard
        return served, False, guard

    # -- endpoints -----------------------------------------------------

    def _handle_health(self, body: Mapping[str, Any]) -> Dict[str, Any]:
        return {
            "ok": True,
            "statistics_version": self.service.catalog.statistics_version,
            "uptime_seconds": time.time() - self._started,
            "engines": ["default", *sorted(self.engines)],
        }

    def _handle_stats(self, body: Mapping[str, Any]) -> Dict[str, Any]:
        cache = self.service.cache.stats.snapshot()
        return {
            "cache": cache.counters(),
            "cache_entries": len(self.service.cache),
            "admission": self.admission.counters(),
            "registry": self.registry.state(),
            "server": {
                "requests": self.requests,
                "errors": self.errors,
                "prepared_statements": len(self._statements),
                "inflight_optimizations": self.service.single_flight.inflight(),
                "uptime_seconds": time.time() - self._started,
            },
        }

    def _handle_plans(self, body: Mapping[str, Any]) -> Dict[str, Any]:
        return self.registry.state()

    async def _handle_optimize(self, body: Mapping[str, Any]) -> Dict[str, Any]:
        started = time.monotonic()
        sql = require(body, "sql", str)
        hints = parse_hints(body)
        service = self._service_for(hints)
        prepared, key = await self._resolve(service, sql)
        pin = self.registry.pinned(key)
        if pin is not None:
            # Pinned: served as-is, no optimization, no admission.
            self.registry.record_pinned_hit(key)
            served = ServedResult(
                plan=pin.plan,
                cost=pin.cost_total,
                required=pin.required,
                fingerprint=prepared.exact,
                cached=True,
                certificate=pin.certificate,
                verified=pin.verified,
            )
            return served_payload(served, key, pinned=True)
        budget = self._request_budget(body, hints, started)
        async with self.admission.slot(self._admission_timeout(body)):
            served = await self._in_thread(
                lambda: service.optimize(prepared, budget=budget, hints=hints)
            )
        served, pinned, guard = self._guarded(served, key)
        return served_payload(served, key, pinned=pinned, guard=guard)

    async def _handle_execute(self, body: Mapping[str, Any]) -> Dict[str, Any]:
        started = time.monotonic()
        sql = require(body, "sql", str)
        hints = parse_hints(body)
        service = self._service_for(hints)
        prepared, key = await self._resolve(service, sql)
        pin = self.registry.pinned(key)
        if pin is not None:
            # A pinned key executes its pinned plan verbatim.  The run
            # is uninstrumented on purpose: an operator override is not
            # evidence about the optimizer's estimates.
            self.registry.record_pinned_hit(key)

            def run_pinned():
                from repro.executor import ExecutionStats, execute_plan

                stats = ExecutionStats()
                rows = execute_plan(
                    pin.plan, service.catalog, stats, instrument=False
                )
                return rows, stats

            async with self.admission.slot(self._admission_timeout(body)):
                rows, stats = await self._in_thread(run_pinned)
            served = ServedResult(
                plan=pin.plan,
                cost=pin.cost_total,
                required=pin.required,
                fingerprint=prepared.exact,
                cached=True,
                certificate=pin.certificate,
                verified=pin.verified,
            )
            payload = served_payload(served, key, pinned=True)
            payload.update(
                {
                    "row_count": len(rows),
                    "rows": rows,
                    "execution": {
                        "rows_scanned": stats.rows_scanned,
                        "rows_emitted": stats.rows_emitted,
                        "pages_read": stats.pages_read,
                        "pages_written": stats.pages_written,
                    },
                    "max_q_error": 1.0,
                    "refreshed": False,
                }
            )
            return payload
        budget = self._request_budget(body, hints, started)
        async with self.admission.slot(self._admission_timeout(body)):
            executed = await self._in_thread(
                lambda: service.execute(
                    prepared.expression, prepared.props, budget=budget
                )
            )
        served, pinned, guard = self._guarded(executed.served, key)
        # Fold execution evidence into the incumbent — this is what
        # arms the regression guard for this key.
        self.registry.observe(
            key,
            executed.served.plan,
            max_q_error=executed.max_q_error,
            work=float(executed.stats.rows_scanned + executed.stats.rows_emitted),
        )
        payload = executed_payload(executed, key)
        payload["pinned"] = pinned
        payload["guard"] = guard
        if pinned:
            # Rolled back mid-request: the rows above ran the candidate
            # once, but the *served plan* is the incumbent's.
            payload["plan"] = served.plan.pretty(with_cost=False)
            payload["sexpr"] = served.plan.to_sexpr()
        return payload

    async def _handle_prepare(self, body: Mapping[str, Any]) -> Dict[str, Any]:
        sql = require(body, "sql", str)
        hints = parse_hints(body)
        service = self._service_for(hints)

        def build():
            prepared = service.prepare(sql)
            normalized = normalize_literals(
                prepared.expression,
                service.catalog,
                buckets=service.options.selectivity_buckets,
            )
            return prepared, normalized

        prepared, normalized = await self._in_thread(build)
        statement = "stmt-" + stable_key(
            normalized.template, prepared.props
        )[:16]
        with self._statements_lock:
            self._statements[statement] = (prepared, normalized)
        return {
            "statement": statement,
            "parameters": dict(normalized.bindings),
            "parameterized": normalized.is_parameterized,
            "bucket_key": [list(entry) for entry in normalized.bucket_key],
        }

    async def _handle_bind(self, body: Mapping[str, Any]) -> Dict[str, Any]:
        started = time.monotonic()
        statement = require(body, "statement", str)
        with self._statements_lock:
            entry = self._statements.get(statement)
        if entry is None:
            raise ServerError(f"unknown statement: {statement!r}", status=404)
        prepared, normalized = entry
        values = body.get("parameters") or {}
        if not isinstance(values, Mapping):
            raise ServerError("parameters must be an object")
        unknown = set(values) - set(normalized.bindings)
        if unknown:
            raise ServerError(
                f"unknown parameters {sorted(unknown)}; "
                f"statement has {sorted(normalized.bindings)}"
            )
        # Unbound parameters keep the literals of the prepared text.
        merged = {**dict(normalized.bindings), **dict(values)}
        hints = parse_hints(body)
        service = self._service_for(hints)
        budget = self._request_budget(body, hints, started)

        def run():
            bound = bind_expression(normalized.template, merged)
            key = stable_key(bound, prepared.props)
            served = service.optimize(
                bound, prepared.props, budget=budget, hints=hints
            )
            return bound, key, served

        async with self.admission.slot(self._admission_timeout(body)):
            _bound, key, served = await self._in_thread(run)
        served, pinned, guard = self._guarded(served, key)
        payload = served_payload(served, key, pinned=pinned, guard=guard)
        payload["statement"] = statement
        payload["parameters"] = {
            name: merged[name] for name in sorted(merged)
        }
        return payload

    async def _handle_batch(self, body: Mapping[str, Any]) -> Dict[str, Any]:
        queries = require(body, "queries", list)
        if not queries or not all(isinstance(q, str) for q in queries):
            raise ServerError("queries must be a non-empty list of SQL strings")
        hints = parse_hints(body)
        service = self._service_for(hints)
        deadline = body.get("deadline_seconds")
        if deadline is not None and (
            not isinstance(deadline, (int, float)) or deadline <= 0
        ):
            raise ServerError("deadline_seconds must be a positive number")
        def run():
            prepared = [service.prepare(sql) for sql in queries]
            batch = service.optimize_many(prepared, deadline_seconds=deadline)
            keys = [stable_key(p.expression, p.props) for p in prepared]
            return batch, keys

        async with self.admission.slot(self._admission_timeout(body)):
            batch, keys = await self._in_thread(run)
        results = []
        for key, served in zip(keys, batch.results):
            served, pinned, guard = self._guarded(served, key)
            results.append(
                served_payload(served, key, pinned=pinned, guard=guard)
            )
        report = batch.sharing_report
        return {
            "results": results,
            "shared_plans": len(batch.shared_plans),
            "sharing": (
                {
                    "independent_total": report.independent_total,
                    "shared_total": report.shared_total,
                    "shared_plans": len(report.shared_plans),
                }
                if report is not None and report.shared_plans
                else None
            ),
            "degraded_to_independent": batch.degraded_to_independent,
            "cache_stats": (
                batch.cache_stats.counters()
                if batch.cache_stats is not None
                else None
            ),
        }

    async def _handle_pin(self, body: Mapping[str, Any]) -> Dict[str, Any]:
        started = time.monotonic()
        sql = require(body, "sql", str)
        reason = str(body.get("reason", ""))
        hints = parse_hints(body)
        service = self._service_for(hints)
        prepared, key = await self._resolve(service, sql)
        budget = self._request_budget(body, hints, started)
        async with self.admission.slot(self._admission_timeout(body)):
            served = await self._in_thread(
                lambda: service.optimize(prepared, budget=budget, hints=hints)
            )
        if served.degraded:
            raise ServerError(
                "refusing to pin a degraded (budget-tripped) plan", status=409
            )
        verified = False
        if self.options.verify_pins and served.certificate is not None:
            ok = await self._in_thread(
                lambda: service.verify_served(
                    prepared.expression, served.plan, served.certificate
                )
            )
            if ok is False:
                raise ServerError(
                    "refusing pin: plan certificate failed verification",
                    status=409,
                )
            verified = bool(ok)
        pin = self.registry.pin(
            key,
            served.plan,
            _total(served.cost),
            served.required,
            certificate=served.certificate,
            kind="user",
            verified=verified,
            statistics_version=service.catalog.statistics_version,
            reason=reason,
        )
        return {
            "key": key,
            "pinned": True,
            "verified": pin.verified,
            "cost_total": pin.cost_total,
            "plan": pin.plan.pretty(with_cost=False),
            "pinned_version": pin.pinned_version,
        }

    async def _handle_unpin(self, body: Mapping[str, Any]) -> Dict[str, Any]:
        key = body.get("key")
        if key is None:
            sql = require(body, "sql", str)
            _prepared, key = await self._resolve(self.service, sql)
        elif not isinstance(key, str):
            raise ServerError("key must be a string")
        pin = self.registry.unpin(
            key, statistics_version=self.service.catalog.statistics_version
        )
        if pin is None:
            raise ServerError(f"no pin for key {key!r}", status=404)
        return {"key": key, "unpinned": True, "kind": pin.kind}

    async def _handle_statistics(
        self, body: Mapping[str, Any]
    ) -> Dict[str, Any]:
        table = require(body, "table", str)
        raw = require(body, "statistics", dict)
        catalog = self.service.catalog
        if table not in catalog:
            raise ServerError(f"unknown table: {table!r}", status=404)
        current = catalog.table(table).statistics
        columns = dict(current.columns)
        for name, spec in (raw.get("columns") or {}).items():
            if not isinstance(spec, Mapping):
                raise ServerError(f"column {name!r} statistics must be an object")
            columns[name] = ColumnStatistics(
                distinct_values=float(
                    spec.get(
                        "distinct_values",
                        getattr(columns.get(name), "distinct_values", 1.0),
                    )
                ),
                min_value=spec.get(
                    "min_value", getattr(columns.get(name), "min_value", None)
                ),
                max_value=spec.get(
                    "max_value", getattr(columns.get(name), "max_value", None)
                ),
            )
        updated = TableStatistics(
            row_count=float(raw.get("row_count", current.row_count)),
            row_width=int(raw.get("row_width", current.row_width)),
            columns=columns,
        )
        await self._in_thread(
            lambda: catalog.update_statistics(table, updated)
        )
        return {
            "table": table,
            "row_count": updated.row_count,
            "table_version": catalog.table_version(table),
            "statistics_version": catalog.statistics_version,
        }

    async def _handle_shutdown(self, body: Mapping[str, Any]) -> Dict[str, Any]:
        # Respond first, then trip the shutdown event: serve_forever()
        # stops accepting and drains what is in flight.
        asyncio.get_running_loop().call_soon(self._shutdown.set)
        return {"ok": True, "draining": self.admission.active}


def _total(cost: Any) -> float:
    total = getattr(cost, "total", None)
    if callable(total):
        return float(total())
    return float(cost)


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class ServerThread:
    """An :class:`OptimizerServer` on a background event loop.

    The in-process harness used by the tests, the benchmark, and the
    round-trip example: start it, talk to ``http://host:port`` from
    any number of plain blocking clients, stop it.

    >>> harness = ServerThread(server)
    >>> harness.start()
    >>> client = ServerClient(harness.address)
    >>> ...
    >>> harness.stop()
    """

    def __init__(self, server: OptimizerServer):
        self.server = server
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._done = threading.Event()

    def start(self, timeout: float = 10.0) -> "ServerThread":
        """Run the server on a daemon thread; block until it is bound."""
        self._thread = threading.Thread(
            target=self._run, name="repro-server-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=timeout):
            raise ServerError("server failed to start in time", status=500)
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)

        async def main():
            await self.server.start()
            self._ready.set()
            await self.server.serve_forever()

        try:
            loop.run_until_complete(main())
        finally:
            loop.close()
            self._done.set()
            self._ready.set()  # unblock start() on failure

    @property
    def address(self) -> str:
        return self.server.address

    def stop(self, timeout: float = 10.0) -> None:
        """Trigger graceful shutdown and join the loop thread."""
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self.server._shutdown.set)
        self._done.wait(timeout=timeout)
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
