"""The long-lived optimizer server: HTTP/JSON plan management (S18).

Promotes the :class:`~repro.service.OptimizerService` plan-cache front
to a process boundary: an asyncio HTTP server
(:class:`~repro.server.app.OptimizerServer`) with prepared statements,
plan pinning and per-request hints, a statistics-refresh regression
guard (:class:`~repro.server.registry.PlanRegistry`), and admission
control with fast-fail
(:class:`~repro.server.admission.AdmissionController`).  Run it with
``python -m repro.server``; talk to it with
:class:`~repro.server.client.ServerClient`.  See ``docs/server.md``.
"""

from repro.server.admission import AdmissionController
from repro.server.app import OptimizerServer, ServerThread
from repro.server.client import ClientError, ServerClient
from repro.server.registry import (
    GuardDecision,
    Incumbent,
    PinnedPlan,
    PlanRegistry,
    RegistryEvent,
    stable_key,
)

__all__ = [
    "AdmissionController",
    "OptimizerServer",
    "ServerThread",
    "ClientError",
    "ServerClient",
    "GuardDecision",
    "Incumbent",
    "PinnedPlan",
    "PlanRegistry",
    "RegistryEvent",
    "stable_key",
]
