"""A minimal blocking client for the optimizer server.

Pure stdlib (``http.client``), deliberately boring: one persistent
HTTP/1.1 connection, JSON in, JSON out, and a typed error.  It exists
so the tests, the throughput benchmark, and the round-trip example
talk to the server the way any out-of-process client would — through
the wire format, not through Python objects — while staying dependency
free.  Thread usage: one :class:`ServerClient` per thread (the
underlying connection is not locked).
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, List, Mapping, Optional
from urllib.parse import urlsplit

from repro.errors import ServerError

__all__ = ["ClientError", "ServerClient"]


class ClientError(ServerError):
    """A non-2xx server response, carrying its status and JSON body."""

    def __init__(self, status: int, body: Mapping[str, Any]):
        message = str(body.get("error", f"HTTP {status}"))
        super().__init__(message, status=status)
        self.body = dict(body)

    @property
    def reason(self) -> Optional[str]:
        """The server's machine-readable rejection reason, if any."""
        value = self.body.get("reason")
        return value if isinstance(value, str) else None


class ServerClient:
    """Blocking JSON client over one keep-alive connection.

    >>> client = ServerClient("http://127.0.0.1:8725")
    >>> client.health()["ok"]
    True
    >>> answer = client.optimize("SELECT * FROM r, s WHERE r.k = s.k")
    >>> answer["cached"], answer["cost_total"]
    """

    def __init__(self, address: str, timeout: float = 30.0):
        parts = urlsplit(address)
        if parts.scheme not in ("", "http"):
            raise ServerError(f"unsupported scheme: {parts.scheme!r}")
        host = parts.hostname or address
        port = parts.port or 80
        self._connection = http.client.HTTPConnection(
            host, port, timeout=timeout
        )

    def close(self) -> None:
        """Close the underlying connection."""
        self._connection.close()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- transport -----------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        body: Optional[Mapping[str, Any]] = None,
    ) -> Dict[str, Any]:
        """One round trip; raises :class:`ClientError` on non-2xx."""
        payload = json.dumps(body or {}).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        try:
            self._connection.request(method, path, body=payload, headers=headers)
            response = self._connection.getresponse()
            raw = response.read()
        except (ConnectionError, http.client.HTTPException):
            # One reconnect: the server may have closed an idle
            # keep-alive connection under us.
            self._connection.close()
            self._connection.request(method, path, body=payload, headers=headers)
            response = self._connection.getresponse()
            raw = response.read()
        try:
            decoded = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            decoded = {"error": raw.decode("utf-8", "replace")}
        if not 200 <= response.status < 300:
            raise ClientError(response.status, decoded)
        return decoded

    # -- endpoints -----------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """``GET /health`` — liveness and configured engines."""
        return self.request("GET", "/health")

    def stats(self) -> Dict[str, Any]:
        """``GET /stats`` — cache, admission, registry, server counters."""
        return self.request("GET", "/stats")

    def plans(self) -> Dict[str, Any]:
        """``GET /plans`` — pins, quarantine, and registry events."""
        return self.request("GET", "/plans")

    def optimize(self, sql: str, **fields: Any) -> Dict[str, Any]:
        """Optimize ``sql``; extra ``fields`` are hints / deadline / budget."""
        return self.request("POST", "/optimize", {"sql": sql, **fields})

    def execute(self, sql: str, **fields: Any) -> Dict[str, Any]:
        """Optimize and run ``sql``; adds rows, stats, and q-error."""
        return self.request("POST", "/execute", {"sql": sql, **fields})

    def prepare(self, sql: str, **fields: Any) -> Dict[str, Any]:
        """Prepare ``sql``; returns a statement id and its parameters."""
        return self.request("POST", "/prepare", {"sql": sql, **fields})

    def bind(
        self,
        statement: str,
        parameters: Optional[Mapping[str, Any]] = None,
        **fields: Any,
    ) -> Dict[str, Any]:
        """Bind ``parameters`` to a prepared statement and optimize."""
        body = {"statement": statement, "parameters": dict(parameters or {})}
        body.update(fields)
        return self.request("POST", "/bind", body)

    def batch(self, queries: List[str], **fields: Any) -> Dict[str, Any]:
        """Optimize ``queries`` together (shared memo when they miss)."""
        return self.request("POST", "/batch", {"queries": queries, **fields})

    def pin(self, sql: str, reason: str = "", **fields: Any) -> Dict[str, Any]:
        """Optimize ``sql`` and pin its (verified) plan."""
        body = {"sql": sql, "reason": reason}
        body.update(fields)
        return self.request("POST", "/plans/pin", body)

    def unpin(
        self, sql: Optional[str] = None, key: Optional[str] = None
    ) -> Dict[str, Any]:
        """Lift a pin, addressed by ``sql`` or registry ``key``."""
        body: Dict[str, Any] = {}
        if key is not None:
            body["key"] = key
        if sql is not None:
            body["sql"] = sql
        return self.request("POST", "/plans/unpin", body)

    def update_statistics(
        self, table: str, statistics: Mapping[str, Any]
    ) -> Dict[str, Any]:
        """Merge new ``statistics`` into ``table`` (bumps versions)."""
        return self.request(
            "POST",
            "/admin/statistics",
            {"table": table, "statistics": dict(statistics)},
        )

    def shutdown(self) -> Dict[str, Any]:
        """Ask the server to drain in-flight work and stop."""
        return self.request("POST", "/admin/shutdown")
