"""Wire payloads of the optimizer server: JSON in, JSON out.

One module owns every request/response shape so the asyncio app
(:mod:`repro.server.app`), the blocking client
(:mod:`repro.server.client`), and the tests agree on field names by
construction.  Plans cross the wire as their deterministic renderings
— ``pretty`` for humans, ``sexpr`` for byte-identity assertions —
never as pickles: the server is the only party holding live plan
objects, which is what makes pinning and the regression guard
enforceable server-side.

Parsing helpers raise :class:`~repro.errors.ServerError` with an HTTP
status baked in; the app maps any raised ``ServerError`` straight to
an error response, so endpoint handlers can validate by just calling
these.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from repro.errors import ServerError
from repro.options import KERNEL_TIERS, PROMISE_HINTS, QueryHints, ResourceBudget
from repro.service.service import ExecutedResult, ServedResult

__all__ = [
    "parse_hints",
    "parse_budget",
    "require",
    "served_payload",
    "executed_payload",
]


def require(body: Mapping[str, Any], name: str, kind: type) -> Any:
    """A required request field of the given JSON type, or a 400."""
    if name not in body:
        raise ServerError(f"missing required field {name!r}")
    value = body[name]
    if not isinstance(value, kind):
        raise ServerError(
            f"field {name!r} must be {kind.__name__}, got "
            f"{type(value).__name__}"
        )
    return value


def parse_budget(raw: Any) -> Optional[ResourceBudget]:
    """A ``budget`` request object → :class:`ResourceBudget`, or a 400."""
    if raw is None:
        return None
    if not isinstance(raw, Mapping):
        raise ServerError("budget must be an object")
    allowed = {"deadline_seconds", "max_costings", "max_rule_firings"}
    unknown = set(raw) - allowed
    if unknown:
        raise ServerError(f"unknown budget fields: {sorted(unknown)}")
    try:
        return ResourceBudget(**raw)
    except Exception as error:
        raise ServerError(f"invalid budget: {error}") from None


def parse_hints(body: Mapping[str, Any]) -> Optional[QueryHints]:
    """The hint fields of a request body → :class:`QueryHints`.

    Hints ride as top-level request fields (``engine``, ``kernel``,
    ``promise``, ``budget``) rather than a nested object, so a curl
    one-liner stays a one-liner.  Returns None when no hint is set.
    """
    engine = body.get("engine")
    kernel = body.get("kernel")
    promise = body.get("promise")
    budget = parse_budget(body.get("budget"))
    if engine is None and kernel is None and promise is None and budget is None:
        return None
    if kernel is not None and kernel not in KERNEL_TIERS:
        raise ServerError(f"kernel must be one of {list(KERNEL_TIERS)}")
    if promise is not None and promise not in PROMISE_HINTS:
        raise ServerError(f"promise must be one of {list(PROMISE_HINTS)}")
    if engine is not None and not isinstance(engine, str):
        raise ServerError("engine must be a string")
    return QueryHints(engine=engine, kernel=kernel, budget=budget, promise=promise)


def _cost_total(cost: Any) -> float:
    total = getattr(cost, "total", None)
    if callable(total):
        return float(total())
    return float(cost)


def served_payload(
    served: ServedResult,
    key: str,
    *,
    pinned: bool = False,
    guard: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """One :class:`~repro.service.ServedResult` as a response body.

    ``key`` is the query's stable (version-independent) plan-management
    key — the handle for ``/plans/pin`` and friends.  ``pinned`` marks
    answers served straight from a pin (no optimization ran at all);
    ``guard`` carries the regression-guard decision for fresh answers.
    """
    return {
        "key": key,
        "fingerprint": served.fingerprint.digest,
        "plan": served.plan.pretty(with_cost=False),
        "sexpr": served.plan.to_sexpr(),
        "cost": str(served.cost),
        "cost_total": _cost_total(served.cost),
        "cached": served.cached,
        "parameterized": served.parameterized,
        "degraded": served.degraded,
        "verified": served.verified,
        "pinned": pinned,
        "elapsed_seconds": served.elapsed_seconds,
        "guard": dict(guard) if guard is not None else None,
    }


def executed_payload(
    executed: ExecutedResult,
    key: str,
    *,
    max_rows: Optional[int] = None,
) -> Dict[str, Any]:
    """One optimize–execute round trip as a response body.

    ``max_rows`` truncates the returned row set (``row_count`` stays
    the true count); None returns every row — fine for the synthetic
    catalogs this server fronts, unwise for anything larger.
    """
    rows: List[dict] = executed.rows
    payload = served_payload(executed.served, key)
    payload.update(
        {
            "row_count": len(rows),
            "rows": rows if max_rows is None else rows[:max_rows],
            "execution": {
                "rows_scanned": executed.stats.rows_scanned,
                "rows_emitted": executed.stats.rows_emitted,
                "pages_read": executed.stats.pages_read,
                "pages_written": executed.stats.pages_written,
            },
            "max_q_error": executed.max_q_error,
            "refreshed": executed.refreshed,
        }
    )
    return payload
