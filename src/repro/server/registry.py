"""Plan management for the long-lived optimizer server.

The plan cache (:mod:`repro.service`) answers "what did the optimizer
last say for this query under these statistics?".  A *server* needs a
second, longer-lived layer of plan management on top of it:

* **pinning** — an operator (or the regression guard itself) fixes a
  query's plan, and the server serves that plan without re-optimizing
  until the pin is lifted, *even across statistics changes* that would
  invalidate every cache entry;
* **incumbents** — the plan currently serving each query, together
  with the execution evidence accumulated for it (observed work,
  worst q-error), surviving cache invalidation;
* the **regression guard** — when a statistics refresh makes the
  optimizer re-plan a query, the freshly estimated cost is compared
  against the incumbent's, with slack proportional to how wrong the
  incumbent's own estimates were *observed* to be.  A refresh whose
  estimate blows past that allowance is judged a regression: the
  candidate is quarantined, the incumbent is re-installed as a
  ``rollback`` pin, and the event is surfaced through the stats
  endpoint.

Keys here are **stable keys** (:func:`stable_key`): a digest of the
query's canonical s-expression and required properties *only* — unlike
cache fingerprints, statistics versions are deliberately excluded, so
the same query maps to the same key before and after a refresh.  That
is what lets a pin survive a statistics bump, and what lets the guard
recognize "the same query, re-planned".

Why observed evidence gates the guard: comparing two plans both costed
under the *current* statistics can never detect a regression — the
fresh plan is by construction the cheapest under them.  What can go
wrong is the statistics themselves (a bad refresh, a corrupted bulk
load).  The incumbent's estimated cost at adoption time plus its
observed q-error bound how expensive an honest re-plan of this query
can get: genuine drift was *preceded* by large observed q-errors
(estimates were badly off, so wide slack — the refresh is accepted),
while a refresh that explodes the estimate of a query whose estimates
were observed to be accurate (q ≈ 1, tight slack) is rolled back.
Queries with no execution evidence are never guarded — there is
nothing to defend.
"""

from __future__ import annotations

import hashlib
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.algebra.expressions import LogicalExpression
from repro.algebra.plans import PhysicalPlan
from repro.algebra.properties import PhysProps
from repro.options import ServerOptions
from repro.verify.certificate import PlanCertificate

__all__ = [
    "stable_key",
    "PinnedPlan",
    "Incumbent",
    "GuardDecision",
    "RegistryEvent",
    "PlanRegistry",
]


def _same_plan(left: PhysicalPlan, right: PhysicalPlan) -> bool:
    """Structural plan identity, ignoring annotated costs.

    ``PhysicalPlan.__eq__`` compares the cost annotations too, and a
    statistics bump re-prices every node — so the *same* plan
    re-derived after a refresh would never compare equal.  Plan
    management cares about what would execute, which the canonical
    s-expression captures exactly.
    """
    return left.to_sexpr() == right.to_sexpr()


def stable_key(expression: LogicalExpression, props: PhysProps) -> str:
    """A version-independent identity for (query, required properties).

    Cache fingerprints bake per-table statistics versions into their
    digest, so the same query gets a *new* fingerprint after every
    refresh — exactly right for invalidation, exactly wrong for plan
    management, where pins and incumbents must track a query across
    refreshes.  This digest covers only the canonical s-expression and
    the property vector.
    """
    payload = "\x1f".join((expression.to_sexpr(), str(props)))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class PinnedPlan:
    """A plan fixed for a stable key, served without re-optimization.

    ``kind`` is ``"user"`` for operator pins (the ``/plans/pin``
    endpoint) and ``"rollback"`` for pins the regression guard
    installed to keep serving an incumbent past a rejected refresh.
    ``verified`` records whether the plan's provenance certificate was
    re-checked through the independent checker at pin time.
    ``pinned_version`` is the catalog statistics version when the pin
    was taken — informational only; pins deliberately do *not* expire
    on version bumps.
    """

    key: str
    plan: PhysicalPlan
    cost_total: float
    required: PhysProps
    certificate: Optional[PlanCertificate] = None
    kind: str = "user"
    verified: bool = False
    pinned_version: int = 0
    reason: str = ""


@dataclass
class Incumbent:
    """The plan currently serving a stable key, plus its evidence.

    ``cost_total`` is the optimizer's estimate *at adoption time* —
    under the statistics then current — which is the guard's baseline.
    ``observed_q_error`` / ``observed_work`` accumulate from
    instrumented executions of this exact plan (worst q-error wins;
    work is the latest observation).  Evidence resets whenever a new
    plan is adopted: it describes *this* plan, not the query.
    """

    key: str
    plan: PhysicalPlan
    cost_total: float
    required: PhysProps
    certificate: Optional[PlanCertificate] = None
    adopted_version: int = 0
    observed_q_error: Optional[float] = None
    observed_work: Optional[float] = None
    executions: int = 0


@dataclass(frozen=True)
class GuardDecision:
    """What the regression guard decided for one fresh optimization.

    ``action`` is one of:

    ``"adopt"``
        First plan for this key (or guard off): it becomes the
        incumbent unconditionally.
    ``"retain"``
        The fresh plan equals the incumbent's — nothing changed but
        the statistics version; evidence is kept.
    ``"refresh"``
        A *different* plan within the evidence-backed allowance (or no
        evidence to guard with): adopted, evidence reset.
    ``"rollback"``
        The refresh regressed beyond the allowance: the candidate is
        quarantined, the incumbent re-installed as a ``rollback`` pin,
        and the served plan is the **incumbent's**, not the fresh one.

    ``plan`` / ``cost_total`` are what the server must actually serve
    (the candidate's, except on rollback).
    """

    action: str
    plan: PhysicalPlan
    cost_total: float
    allowed: Optional[float] = None
    detail: str = ""

    @property
    def rolled_back(self) -> bool:
        return self.action == "rollback"


@dataclass(frozen=True)
class RegistryEvent:
    """One plan-management occurrence, surfaced via the stats endpoint."""

    kind: str  # "pin" | "unpin" | "refresh" | "rollback"
    key: str
    detail: str = ""
    statistics_version: int = 0

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready rendering for the stats endpoint."""
        return {
            "kind": self.kind,
            "key": self.key,
            "detail": self.detail,
            "statistics_version": self.statistics_version,
        }


@dataclass
class QuarantinedPlan:
    """A refresh the guard rejected, kept for post-mortem inspection."""

    key: str
    cost_total: float
    allowed: float
    incumbent_cost_total: float
    statistics_version: int

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready rendering for the stats endpoint."""
        return {
            "key": self.key,
            "cost_total": self.cost_total,
            "allowed": self.allowed,
            "incumbent_cost_total": self.incumbent_cost_total,
            "statistics_version": self.statistics_version,
        }


@dataclass
class PlanRegistry:
    """Pins, incumbents, and the regression guard, thread-safe.

    One registry per server; every worker thread that finishes an
    optimization routes the fresh answer through :meth:`admit`, every
    instrumented execution reports through :meth:`observe`, and the
    request path consults :meth:`pinned` before touching the service
    at all.  ``options`` supplies the guard thresholds
    (:class:`~repro.options.ServerOptions`).
    """

    options: ServerOptions = field(default_factory=ServerOptions)
    max_events: int = 256

    def __post_init__(self) -> None:
        self._lock = threading.RLock()
        self._pins: Dict[str, PinnedPlan] = {}
        self._incumbents: Dict[str, Incumbent] = {}
        self._quarantine: Dict[str, QuarantinedPlan] = {}
        self._events: Deque[RegistryEvent] = deque(maxlen=self.max_events)
        self.pins_taken = 0
        self.unpins = 0
        self.pinned_hits = 0
        self.refreshes = 0
        self.rollbacks = 0

    # -- pinning -------------------------------------------------------

    def pin(
        self,
        key: str,
        plan: PhysicalPlan,
        cost_total: float,
        required: PhysProps,
        *,
        certificate: Optional[PlanCertificate] = None,
        kind: str = "user",
        verified: bool = False,
        statistics_version: int = 0,
        reason: str = "",
    ) -> PinnedPlan:
        """Fix ``plan`` for ``key``; it is served until :meth:`unpin`.

        Certificate verification is the *caller's* job (the server has
        the service and its model spec); ``verified`` records the
        outcome.  Re-pinning a pinned key replaces the pin.
        """
        pinned = PinnedPlan(
            key=key,
            plan=plan,
            cost_total=cost_total,
            required=required,
            certificate=certificate,
            kind=kind,
            verified=verified,
            pinned_version=statistics_version,
            reason=reason,
        )
        with self._lock:
            self._pins[key] = pinned
            self.pins_taken += 1
            self._events.append(
                RegistryEvent(
                    kind="pin",
                    key=key,
                    detail=f"{kind} pin (cost {cost_total:.1f}): {reason}".rstrip(
                        ": "
                    ),
                    statistics_version=statistics_version,
                )
            )
        return pinned

    def unpin(self, key: str, statistics_version: int = 0) -> Optional[PinnedPlan]:
        """Lift the pin on ``key``; returns it, or None when not pinned.

        Unpinning also clears any quarantine record for the key — the
        operator has taken over; the next optimization starts clean.
        """
        with self._lock:
            pinned = self._pins.pop(key, None)
            if pinned is None:
                return None
            self._quarantine.pop(key, None)
            self.unpins += 1
            self._events.append(
                RegistryEvent(
                    kind="unpin",
                    key=key,
                    detail=f"{pinned.kind} pin lifted",
                    statistics_version=statistics_version,
                )
            )
            return pinned

    def pinned(self, key: str) -> Optional[PinnedPlan]:
        """The pin for ``key``, or None.  Does not count a hit."""
        with self._lock:
            return self._pins.get(key)

    def record_pinned_hit(self, key: str) -> None:
        """Count one request served straight from a pin."""
        with self._lock:
            self.pinned_hits += 1

    def pins(self) -> List[PinnedPlan]:
        """Every live pin (user pins and guard rollbacks)."""
        with self._lock:
            return list(self._pins.values())

    # -- evidence ------------------------------------------------------

    def observe(
        self,
        key: str,
        plan: PhysicalPlan,
        *,
        max_q_error: float,
        work: Optional[float] = None,
    ) -> bool:
        """Fold one instrumented execution into the key's incumbent.

        Evidence only counts when the executed plan *is* the incumbent
        plan — a pinned or rolled-back request may execute something
        else, and its q-errors say nothing about the incumbent.
        Returns whether the observation was attributed.
        """
        with self._lock:
            incumbent = self._incumbents.get(key)
            if incumbent is None or not _same_plan(incumbent.plan, plan):
                return False
            worst = incumbent.observed_q_error
            incumbent.observed_q_error = (
                max_q_error if worst is None else max(worst, max_q_error)
            )
            if work is not None:
                incumbent.observed_work = work
            incumbent.executions += 1
            return True

    def incumbent(self, key: str) -> Optional[Incumbent]:
        """The currently adopted plan for ``key``, if any."""
        with self._lock:
            return self._incumbents.get(key)

    # -- the regression guard ------------------------------------------

    def admit(
        self,
        key: str,
        plan: PhysicalPlan,
        cost_total: float,
        required: PhysProps,
        *,
        certificate: Optional[PlanCertificate] = None,
        statistics_version: int = 0,
    ) -> GuardDecision:
        """Judge one fresh optimization for ``key``; maybe roll it back.

        Call with every *fresh* (non-degraded) answer the service
        produced.  The decision's ``plan`` is what must be served; on
        ``"rollback"`` that is the incumbent's plan and a ``rollback``
        pin now guards the key (lift it with :meth:`unpin` to let the
        optimizer try again).
        """
        with self._lock:
            incumbent = self._incumbents.get(key)
            if incumbent is None or not self.options.guard_plans:
                self._adopt(
                    key, plan, cost_total, required, certificate,
                    statistics_version,
                )
                return GuardDecision(
                    action="adopt", plan=plan, cost_total=cost_total
                )
            if _same_plan(incumbent.plan, plan):
                # Same plan, possibly re-derived under new statistics:
                # keep the evidence, move the baseline to the fresh
                # estimate (it reflects the current statistics).
                incumbent.cost_total = cost_total
                incumbent.adopted_version = statistics_version
                return GuardDecision(
                    action="retain", plan=plan, cost_total=cost_total
                )
            evidence = incumbent.observed_q_error
            if evidence is None:
                # Never executed: no grounds to distrust the refresh.
                self._adopt(
                    key, plan, cost_total, required, certificate,
                    statistics_version,
                )
                return GuardDecision(
                    action="refresh", plan=plan, cost_total=cost_total
                )
            slack = max(1.0, min(self.options.guard_slack_cap, evidence))
            allowed = incumbent.cost_total * self.options.guard_threshold * slack
            if cost_total <= allowed:
                self.refreshes += 1
                detail = (
                    f"refresh accepted: cost {cost_total:.1f} within "
                    f"allowance {allowed:.1f} (q-error slack {slack:.2f})"
                )
                self._events.append(
                    RegistryEvent(
                        kind="refresh",
                        key=key,
                        detail=detail,
                        statistics_version=statistics_version,
                    )
                )
                self._adopt(
                    key, plan, cost_total, required, certificate,
                    statistics_version,
                )
                return GuardDecision(
                    action="refresh",
                    plan=plan,
                    cost_total=cost_total,
                    allowed=allowed,
                    detail=detail,
                )
            # Regression: quarantine the candidate and re-install the
            # incumbent behind a rollback pin so later requests do not
            # re-trip the guard (or re-run the engine) on every call.
            self.rollbacks += 1
            self._quarantine[key] = QuarantinedPlan(
                key=key,
                cost_total=cost_total,
                allowed=allowed,
                incumbent_cost_total=incumbent.cost_total,
                statistics_version=statistics_version,
            )
            detail = (
                f"rolled back: refreshed cost {cost_total:.1f} exceeds "
                f"allowance {allowed:.1f} (incumbent "
                f"{incumbent.cost_total:.1f}, q-error slack {slack:.2f})"
            )
            self._events.append(
                RegistryEvent(
                    kind="rollback",
                    key=key,
                    detail=detail,
                    statistics_version=statistics_version,
                )
            )
            self.pin(
                key,
                incumbent.plan,
                incumbent.cost_total,
                incumbent.required,
                certificate=incumbent.certificate,
                kind="rollback",
                verified=False,
                statistics_version=statistics_version,
                reason="regression guard",
            )
            return GuardDecision(
                action="rollback",
                plan=incumbent.plan,
                cost_total=incumbent.cost_total,
                allowed=allowed,
                detail=detail,
            )

    def _adopt(
        self,
        key: str,
        plan: PhysicalPlan,
        cost_total: float,
        required: PhysProps,
        certificate: Optional[PlanCertificate],
        statistics_version: int,
    ) -> None:
        self._incumbents[key] = Incumbent(
            key=key,
            plan=plan,
            cost_total=cost_total,
            required=required,
            certificate=certificate,
            adopted_version=statistics_version,
        )

    # -- introspection -------------------------------------------------

    def quarantined(self, key: str) -> Optional[QuarantinedPlan]:
        """The rejected refresh for ``key``, if the guard rolled one back."""
        with self._lock:
            return self._quarantine.get(key)

    def events(self) -> List[RegistryEvent]:
        """The bounded event log, oldest first."""
        with self._lock:
            return list(self._events)

    def counters(self) -> Dict[str, int]:
        """Registry totals for the stats endpoint."""
        with self._lock:
            return {
                "pins": len(self._pins),
                "incumbents": len(self._incumbents),
                "quarantined": len(self._quarantine),
                "pins_taken": self.pins_taken,
                "unpins": self.unpins,
                "pinned_hits": self.pinned_hits,
                "refreshes": self.refreshes,
                "rollbacks": self.rollbacks,
            }

    def state(self) -> Dict[str, object]:
        """A JSON-ready summary for the ``/stats`` endpoint."""
        with self._lock:
            return {
                "counters": self.counters(),
                "pins": [
                    {
                        "key": pin.key,
                        "kind": pin.kind,
                        "cost_total": pin.cost_total,
                        "verified": pin.verified,
                        "pinned_version": pin.pinned_version,
                        "reason": pin.reason,
                    }
                    for pin in self._pins.values()
                ],
                "quarantined": [
                    record.as_dict() for record in self._quarantine.values()
                ],
                "events": [event.as_dict() for event in self._events],
            }
