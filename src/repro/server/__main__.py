"""``python -m repro.server`` — run the optimizer server.

Builds a synthetic executable catalog (seeded, deterministic — the
same generator the tests and benches use), generates an optimizer for
the paper's relational model, wraps it in the caching service, and
serves it until SIGINT/SIGTERM, draining in-flight requests on the way
out.

::

    python -m repro.server --port 8725 --tables r:300,s:900,t:600
    curl -s localhost:8725/health
    curl -s -XPOST localhost:8725/optimize \
         -d '{"sql": "SELECT * FROM r, s WHERE r.k = s.k"}'

Both memo engines are registered: the default serves requests, the
other is reachable per-request via ``{"engine": ...}`` — over the
*same* plan cache, which is sound because the engines produce
byte-identical plans.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from typing import Dict, List, Tuple

from repro.catalog.catalog import Catalog
from repro.executor.data import TableSpec, generate_table
from repro.generator.generate import generate_optimizer
from repro.models.relational import relational_model
from repro.options import ServerOptions
from repro.search.tasks import TaskBasedOptimizer
from repro.server.app import OptimizerServer
from repro.service.service import OptimizerService, ServiceOptions

__all__ = ["main"]


def _parse_tables(text: str) -> List[Tuple[str, int, int]]:
    """``name:rows[:distinct]`` comma list → (name, rows, distinct)."""
    specs = []
    for chunk in text.split(","):
        parts = chunk.strip().split(":")
        if not parts[0]:
            raise argparse.ArgumentTypeError(f"bad table spec: {chunk!r}")
        try:
            rows = int(parts[1]) if len(parts) > 1 else 1000
            distinct = int(parts[2]) if len(parts) > 2 else 50
        except (ValueError, IndexError):
            raise argparse.ArgumentTypeError(
                f"bad table spec: {chunk!r} (want name:rows[:distinct])"
            ) from None
        specs.append((parts[0], rows, distinct))
    return specs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve a generated optimizer over HTTP/JSON.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8725)
    parser.add_argument(
        "--model",
        choices=["relational"],
        default="relational",
        help="model specification to generate the optimizer from",
    )
    parser.add_argument(
        "--engine",
        choices=["volcano", "task"],
        default="volcano",
        help="default search engine (the other stays reachable by hint)",
    )
    parser.add_argument(
        "--tables",
        type=_parse_tables,
        default=_parse_tables("r:300,s:900,t:600"),
        metavar="name:rows[:distinct],...",
        help="synthetic executable tables to serve (default r/s/t)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--workers", "-N", type=int, default=4,
        help="optimization thread-pool size",
    )
    parser.add_argument(
        "--max-concurrent", type=int, default=4,
        help="optimizations admitted at once (rest queue, then 429)",
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="verify every served plan against its certificate",
    )
    return parser


def build_server(args: argparse.Namespace) -> OptimizerServer:
    catalog = Catalog()
    for name, rows, distinct in args.tables:
        schema, statistics, data = generate_table(
            TableSpec(name, rows, key_distinct=distinct), args.seed
        )
        catalog.add_table(name, schema, statistics, data)
    spec = relational_model()
    service_options = ServiceOptions(verify_plans=args.verify)
    engines: Dict[str, OptimizerService] = {
        "volcano": OptimizerService(
            generate_optimizer(spec, catalog), options=service_options
        ),
        "task": OptimizerService(
            TaskBasedOptimizer(spec, catalog), options=service_options
        ),
    }
    primary = engines[args.engine]
    workers = max(args.workers, args.max_concurrent)
    options = ServerOptions(
        max_concurrent=args.max_concurrent, workers=workers
    )
    return OptimizerServer(
        primary,
        options=options,
        engines=engines,
        host=args.host,
        port=args.port,
    )


async def _serve(server: OptimizerServer) -> None:
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, server._shutdown.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX
            pass
    await server.start()
    print(
        f"repro.server listening on {server.address} "
        f"(engines: {', '.join(['default', *sorted(server.engines)])})",
        flush=True,
    )
    await server.serve_forever()
    print("repro.server: drained and stopped", flush=True)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    server = build_server(args)
    try:
        asyncio.run(_serve(server))
    except KeyboardInterrupt:  # pragma: no cover - signal-handler race
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
