"""Catalog substrate: schemas, statistics, selectivity estimation (S1)."""

from repro.catalog.catalog import Catalog, TableEntry
from repro.catalog.persistence import load_catalog, save_catalog
from repro.catalog.schema import Column, ColumnType, Schema
from repro.catalog.selectivity import SelectivityDefaults, SelectivityEstimator
from repro.catalog.statistics import (
    DEFAULT_PAGE_SIZE,
    ColumnStatistics,
    TableStatistics,
)

__all__ = [
    "Catalog",
    "load_catalog",
    "save_catalog",
    "TableEntry",
    "Column",
    "ColumnType",
    "Schema",
    "SelectivityDefaults",
    "SelectivityEstimator",
    "ColumnStatistics",
    "TableStatistics",
    "DEFAULT_PAGE_SIZE",
]
