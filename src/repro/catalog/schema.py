"""Relation schemas: typed, ordered column lists.

Schemas are the backbone of the *logical properties* the paper attaches to
equivalence classes ("Logical properties can be derived from the logical
algebra expression and include schema, expected size, etc.").  They are
immutable so they can live inside frozen dataclasses and memo keys.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence, Tuple

from repro.errors import SchemaError, UnknownColumnError

__all__ = ["ColumnType", "Column", "Schema"]


class ColumnType(enum.Enum):
    """The small set of column types the synthetic workloads need."""

    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"

    @property
    def default_width(self) -> int:
        """Default storage width in bytes for a value of this type."""
        return _DEFAULT_WIDTHS[self]


_DEFAULT_WIDTHS = {
    ColumnType.INTEGER: 4,
    ColumnType.FLOAT: 8,
    ColumnType.STRING: 20,
}


@dataclass(frozen=True)
class Column:
    """A named, typed column with a storage width in bytes."""

    name: str
    type: ColumnType = ColumnType.INTEGER
    width: Optional[int] = None

    def __post_init__(self):
        if not self.name:
            raise SchemaError("column name must be non-empty")
        if self.width is None:
            object.__setattr__(self, "width", self.type.default_width)
        elif self.width <= 0:
            raise SchemaError(f"column {self.name!r} has non-positive width")

    def renamed(self, new_name: str) -> "Column":
        """Return a copy of this column under a different name."""
        return Column(new_name, self.type, self.width)

    def qualified(self, qualifier: str) -> "Column":
        """Return this column renamed to ``qualifier.name``.

        Used by the SQL front-end to disambiguate columns of aliased
        tables; a column that is already qualified is returned unchanged.
        """
        if "." in self.name:
            return self
        return self.renamed(f"{qualifier}.{self.name}")


@dataclass(frozen=True)
class Schema:
    """An ordered, immutable collection of uniquely named columns."""

    columns: Tuple[Column, ...] = ()
    _index: dict = field(init=False, repr=False, compare=False, hash=False)

    def __post_init__(self):
        if not isinstance(self.columns, tuple):
            object.__setattr__(self, "columns", tuple(self.columns))
        index = {}
        for position, column in enumerate(self.columns):
            if column.name in index:
                raise SchemaError(f"duplicate column name: {column.name!r}")
            index[column.name] = position
        object.__setattr__(self, "_index", index)
        object.__setattr__(self, "_column_names", tuple(index))

    @classmethod
    def of(cls, *specs) -> "Schema":
        """Build a schema from column names, ``(name, type)`` pairs, or Columns.

        >>> Schema.of("a", ("b", ColumnType.STRING)).column_names
        ('a', 'b')
        """
        columns = []
        for spec in specs:
            if isinstance(spec, Column):
                columns.append(spec)
            elif isinstance(spec, str):
                columns.append(Column(spec))
            else:
                name, column_type = spec
                columns.append(Column(name, column_type))
        return cls(tuple(columns))

    @property
    def column_names(self) -> Tuple[str, ...]:
        return self._column_names  # type: ignore[attr-defined]

    @property
    def row_width(self) -> int:
        """Total storage width of one row in bytes."""
        return sum(column.width for column in self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __contains__(self, column_name: str) -> bool:
        return column_name in self._index

    def column(self, column_name: str) -> Column:
        """Return the column with ``column_name`` or raise UnknownColumnError."""
        try:
            return self.columns[self._index[column_name]]
        except KeyError:
            raise UnknownColumnError(column_name, self) from None

    def index_of(self, column_name: str) -> int:
        """Return the ordinal position of ``column_name``."""
        try:
            return self._index[column_name]
        except KeyError:
            raise UnknownColumnError(column_name, self) from None

    def project(self, column_names: Sequence[str]) -> "Schema":
        """Return a schema containing only ``column_names``, in that order."""
        return Schema(tuple(self.column(name) for name in column_names))

    def concat(self, other: "Schema") -> "Schema":
        """Concatenate two schemas, e.g. for the output of a join.

        Raises :class:`SchemaError` on duplicate column names; the bundled
        models keep column names globally unique (via qualification) so a
        duplicate indicates a malformed query.
        """
        return Schema(self.columns + other.columns)

    def qualified(self, qualifier: str) -> "Schema":
        """Return this schema with every column qualified by ``qualifier``."""
        return Schema(tuple(column.qualified(qualifier) for column in self.columns))

    def prefixed(self, prefix: str) -> "Schema":
        """Rename every column to ``prefix.name``, unconditionally.

        Unlike :meth:`qualified`, already-dotted names are prefixed too —
        required when the same table is scanned twice under two aliases.
        """
        return Schema(
            tuple(column.renamed(f"{prefix}.{column.name}") for column in self.columns)
        )

    def intersection_names(self, other: "Schema") -> Tuple[str, ...]:
        """Column names present in both schemas, in this schema's order."""
        return tuple(name for name in self.column_names if name in other)

    def is_union_compatible(self, other: "Schema") -> bool:
        """True when both schemas have the same column types in order.

        Set operations (union, intersection, difference) require their
        inputs to be union compatible.
        """
        if len(self) != len(other):
            return False
        return all(
            a.type == b.type for a, b in zip(self.columns, other.columns)
        )

    def resolve(self, column_name: str) -> str:
        """Resolve a possibly unqualified name to the unique matching column.

        ``resolve("k")`` returns ``"r.k"`` when exactly one column's
        unqualified suffix is ``k``.  Exact matches win.  Ambiguity or a
        missing column raises :class:`UnknownColumnError`.
        """
        if column_name in self._index:
            return column_name
        suffix = "." + column_name
        matches = [name for name in self.column_names if name.endswith(suffix)]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise UnknownColumnError(column_name, self)
        raise SchemaError(
            f"ambiguous column {column_name!r}: matches {', '.join(matches)}"
        )

    def describe(self) -> str:
        """Human-readable one-line description of the schema."""
        parts = ", ".join(
            f"{column.name} {column.type.value}({column.width})"
            for column in self.columns
        )
        return f"({parts})"


def schema_from_names(names: Iterable[str]) -> Schema:
    """Convenience: integer-typed schema from bare column names."""
    return Schema(tuple(Column(name) for name in names))
