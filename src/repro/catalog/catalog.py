"""The catalog: the registry of stored tables, schemas, and statistics.

A generated optimizer consults the catalog through the logical property
functions (schema and cardinality derivation) and through the cost
functions (page counts).  The executor additionally stores the actual
rows here so plans can run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.catalog.schema import Schema
from repro.catalog.statistics import DEFAULT_PAGE_SIZE, TableStatistics
from repro.errors import CatalogError, UnknownTableError

__all__ = ["TableEntry", "Catalog"]


@dataclass
class TableEntry:
    """One stored table: name, schema, statistics, and (optionally) rows."""

    name: str
    schema: Schema
    statistics: TableStatistics
    rows: Optional[List[dict]] = None

    @property
    def has_rows(self) -> bool:
        return self.rows is not None


class Catalog:
    """A mutable registry of tables keyed by name.

    The optimizer only reads from the catalog; workload generators and
    the data generator write to it.
    """

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE):
        if page_size <= 0:
            raise CatalogError("page_size must be positive")
        self.page_size = page_size
        self._tables: Dict[str, TableEntry] = {}

    def add_table(
        self,
        name: str,
        schema: Schema,
        statistics: TableStatistics,
        rows: Optional[List[dict]] = None,
    ) -> TableEntry:
        """Register a table; re-registering an existing name is an error."""
        if name in self._tables:
            raise CatalogError(f"table {name!r} already registered")
        if rows is not None and len(rows) != int(statistics.row_count):
            raise CatalogError(
                f"table {name!r}: statistics claim {statistics.row_count} rows "
                f"but {len(rows)} rows were supplied"
            )
        entry = TableEntry(name=name, schema=schema, statistics=statistics, rows=rows)
        self._tables[name] = entry
        return entry

    def replace_table(
        self,
        name: str,
        schema: Schema,
        statistics: TableStatistics,
        rows: Optional[List[dict]] = None,
    ) -> TableEntry:
        """Register a table, replacing any existing entry of the same name."""
        self._tables.pop(name, None)
        return self.add_table(name, schema, statistics, rows)

    def drop_table(self, name: str) -> None:
        """Remove a table; unknown names raise UnknownTableError."""
        if name not in self._tables:
            raise UnknownTableError(name)
        del self._tables[name]

    def table(self, name: str) -> TableEntry:
        """Look up a table; unknown names raise UnknownTableError."""
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> Tuple[str, ...]:
        """Registered table names, in registration order."""
        return tuple(self._tables)

    def tables(self) -> Iterable[TableEntry]:
        """All registered table entries."""
        return self._tables.values()

    def pages(self, name: str) -> int:
        """Page count of a stored table under this catalog's page size."""
        return self.table(name).statistics.pages(self.page_size)
