"""The catalog: the registry of stored tables, schemas, and statistics.

A generated optimizer consults the catalog through the logical property
functions (schema and cardinality derivation) and through the cost
functions (page counts).  The executor additionally stores the actual
rows here so plans can run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.catalog.schema import Schema
from repro.catalog.statistics import DEFAULT_PAGE_SIZE, TableStatistics
from repro.errors import CatalogError, UnknownTableError

__all__ = ["TableEntry", "Catalog"]


@dataclass
class TableEntry:
    """One stored table: name, schema, statistics, and (optionally) rows."""

    name: str
    schema: Schema
    statistics: TableStatistics
    rows: Optional[List[dict]] = None

    @property
    def has_rows(self) -> bool:
        return self.rows is not None


class Catalog:
    """A mutable registry of tables keyed by name.

    The optimizer only reads from the catalog; workload generators and
    the data generator write to it.

    Every mutation — registering, replacing, or dropping a table, or
    updating its statistics — bumps a **monotonic statistics version**,
    recorded globally and per table.  The version is what makes plans
    cacheable across queries: a cached plan is valid exactly as long as
    the versions of the tables it reads are unchanged, so the
    :class:`~repro.service.OptimizerService` keys its cache on them and
    needs no TTLs.
    """

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE):
        if page_size <= 0:
            raise CatalogError("page_size must be positive")
        self.page_size = page_size
        self._tables: Dict[str, TableEntry] = {}
        self._version = 0
        self._table_versions: Dict[str, int] = {}

    # -- statistics versioning -------------------------------------------

    @property
    def statistics_version(self) -> int:
        """The global monotonic version; bumped by every mutation."""
        return self._version

    def table_version(self, name: str) -> int:
        """The version at which ``name`` last changed.

        Raises :class:`UnknownTableError` for unregistered names.
        """
        if name not in self._tables:
            raise UnknownTableError(name)
        return self._table_versions[name]

    def _bump(self, name: str) -> None:
        self._version += 1
        self._table_versions[name] = self._version

    def update_statistics(self, name: str, statistics: TableStatistics) -> TableEntry:
        """Replace a table's statistics in place (a stats mutation).

        The table keeps its schema and rows; its version (and the global
        statistics version) is bumped, invalidating any cached plans
        that depend on it.
        """
        entry = self.table(name)
        if entry.rows is not None and len(entry.rows) != int(statistics.row_count):
            raise CatalogError(
                f"table {name!r}: new statistics claim {statistics.row_count} "
                f"rows but the table stores {len(entry.rows)} rows"
            )
        entry.statistics = statistics
        self._bump(name)
        return entry

    def add_table(
        self,
        name: str,
        schema: Schema,
        statistics: TableStatistics,
        rows: Optional[List[dict]] = None,
    ) -> TableEntry:
        """Register a table; re-registering an existing name is an error."""
        if name in self._tables:
            raise CatalogError(f"table {name!r} already registered")
        if rows is not None and len(rows) != int(statistics.row_count):
            raise CatalogError(
                f"table {name!r}: statistics claim {statistics.row_count} rows "
                f"but {len(rows)} rows were supplied"
            )
        entry = TableEntry(name=name, schema=schema, statistics=statistics, rows=rows)
        self._tables[name] = entry
        self._bump(name)
        return entry

    def replace_table(
        self,
        name: str,
        schema: Schema,
        statistics: TableStatistics,
        rows: Optional[List[dict]] = None,
    ) -> TableEntry:
        """Register a table, replacing any existing entry of the same name."""
        self._tables.pop(name, None)
        return self.add_table(name, schema, statistics, rows)

    def drop_table(self, name: str) -> None:
        """Remove a table; unknown names raise UnknownTableError."""
        if name not in self._tables:
            raise UnknownTableError(name)
        del self._tables[name]
        self._version += 1
        del self._table_versions[name]

    def table(self, name: str) -> TableEntry:
        """Look up a table; unknown names raise UnknownTableError."""
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> Tuple[str, ...]:
        """Registered table names, in registration order."""
        return tuple(self._tables)

    def tables(self) -> Iterable[TableEntry]:
        """All registered table entries."""
        return self._tables.values()

    def pages(self, name: str) -> int:
        """Page count of a stored table under this catalog's page size."""
        return self.table(name).statistics.pages(self.page_size)
