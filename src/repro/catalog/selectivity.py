"""Selectivity estimation for predicates.

The paper attaches selectivity estimation to the logical property
functions; this module is the shared implementation the bundled models
use.  The estimation rules are the classic System R ones (Selinger et
al. 1979, the paper's reference [15]):

* ``col = literal``       →  1 / distinct(col)
* ``col = col'`` (join)   →  1 / max(distinct(col), distinct(col'))
* range comparisons       →  interpolation over [min, max], else 1/3
* ``col <> literal``      →  1 − 1/distinct(col)
* AND multiplies, OR adds with the inclusion–exclusion correction,
  NOT complements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.algebra.predicates import (
    Comparison,
    ComparisonOp,
    Conjunction,
    Disjunction,
    Negation,
    Predicate,
    TruePredicate,
)
from repro.catalog.statistics import ColumnStatistics

__all__ = ["SelectivityDefaults", "SelectivityEstimator"]


@dataclass(frozen=True)
class SelectivityDefaults:
    """Fallback constants when statistics are missing (System R defaults)."""

    equality: float = 0.1
    range: float = 1.0 / 3.0
    inequality: float = 0.9
    other: float = 0.5


class SelectivityEstimator:
    """Estimates the fraction of rows a predicate keeps.

    Column statistics are supplied per call (they belong to the
    intermediate result being filtered, not to a base table), as a mapping
    from column name to :class:`ColumnStatistics`.
    """

    def __init__(self, defaults: Optional[SelectivityDefaults] = None):
        self.defaults = defaults or SelectivityDefaults()

    def estimate(
        self,
        predicate: Predicate,
        column_stats: Mapping[str, ColumnStatistics],
    ) -> float:
        """Selectivity of ``predicate`` in [0, 1]."""
        result = self._estimate(predicate, column_stats)
        return min(1.0, max(0.0, result))

    def _estimate(self, predicate, column_stats) -> float:
        if isinstance(predicate, TruePredicate):
            return 1.0
        if isinstance(predicate, Conjunction):
            product = 1.0
            for part in predicate.parts:
                product *= self._estimate(part, column_stats)
            return product
        if isinstance(predicate, Disjunction):
            # Inclusion–exclusion assuming independence.
            keep_none = 1.0
            for part in predicate.parts:
                keep_none *= 1.0 - self._estimate(part, column_stats)
            return 1.0 - keep_none
        if isinstance(predicate, Negation):
            return 1.0 - self._estimate(predicate.part, column_stats)
        if isinstance(predicate, Comparison):
            return self._estimate_comparison(predicate, column_stats)
        return self.defaults.other

    def _estimate_comparison(self, comparison, column_stats) -> float:
        column_pair = comparison.column_pair()
        if column_pair is not None:
            return self._estimate_column_column(comparison, column_pair, column_stats)
        column_literal = comparison.column_literal()
        if column_literal is not None:
            return self._estimate_column_literal(column_literal, column_stats)
        return self.defaults.other

    def _estimate_column_column(self, comparison, pair, column_stats) -> float:
        left_stats = column_stats.get(pair[0])
        right_stats = column_stats.get(pair[1])
        if comparison.op is ComparisonOp.EQ:
            distincts = [
                stats.distinct_values
                for stats in (left_stats, right_stats)
                if stats is not None and stats.distinct_values > 0
            ]
            if distincts:
                return 1.0 / max(distincts)
            return self.defaults.equality
        if comparison.op is ComparisonOp.NE:
            return self.defaults.inequality
        return self.defaults.range

    def _estimate_column_literal(self, column_literal, column_stats) -> float:
        name, op, value = column_literal
        stats = column_stats.get(name)
        if op is ComparisonOp.EQ:
            if stats is not None and stats.distinct_values > 0:
                return 1.0 / stats.distinct_values
            return self.defaults.equality
        if op is ComparisonOp.NE:
            if stats is not None and stats.distinct_values > 0:
                return 1.0 - 1.0 / stats.distinct_values
            return self.defaults.inequality
        # Range comparison: interpolate when the column has a numeric range.
        if stats is not None:
            fraction = stats.range_fraction(value)
            if fraction is not None:
                if op in (ComparisonOp.LT, ComparisonOp.LE):
                    return fraction
                if op in (ComparisonOp.GT, ComparisonOp.GE):
                    return 1.0 - fraction
        return self.defaults.range
