"""Table and column statistics used for cardinality and cost estimation.

The paper's logical property functions "encapsulate selectivity
estimation"; these statistics are their raw input.  The experiment in
Section 4.2 used relations of 1,200 to 7,200 records of 100 bytes — the
synthetic data generator produces statistics in exactly that range.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.errors import CatalogError

__all__ = ["ColumnStatistics", "TableStatistics", "DEFAULT_PAGE_SIZE"]

DEFAULT_PAGE_SIZE = 4096
"""Bytes per page; 40 records of 100 bytes per page, as a 1993 system would."""


@dataclass(frozen=True)
class ColumnStatistics:
    """Per-column statistics: distinct count and value range."""

    distinct_values: float
    min_value: Optional[object] = None
    max_value: Optional[object] = None

    def __post_init__(self):
        if self.distinct_values < 0:
            raise CatalogError("distinct_values must be non-negative")

    def scaled(self, factor: float, row_count: float) -> "ColumnStatistics":
        """Distinct count after a filter keeping ``factor`` of the rows.

        Distinct values cannot exceed the surviving row count, and a
        uniform filter keeps roughly ``min(d, factor·rows)`` of them; the
        standard textbook approximation is ``min(d, rows_out)``.
        """
        return ColumnStatistics(
            distinct_values=max(1.0, min(self.distinct_values, row_count)),
            min_value=self.min_value,
            max_value=self.max_value,
        )

    def range_fraction(self, op_value, low_inclusive: bool = True) -> Optional[float]:
        """Fraction of the value range below ``op_value`` (for range predicates).

        Returns None when the column has no numeric range statistics and
        the caller should fall back to a default selectivity constant.
        """
        if self.min_value is None or self.max_value is None:
            return None
        try:
            span = float(self.max_value) - float(self.min_value)
            if span <= 0:
                return None
            fraction = (float(op_value) - float(self.min_value)) / span
        except (TypeError, ValueError):
            return None
        return min(1.0, max(0.0, fraction))


@dataclass(frozen=True)
class TableStatistics:
    """Statistics for one stored table."""

    row_count: float
    row_width: int
    columns: Mapping[str, ColumnStatistics] = field(default_factory=dict)

    def __post_init__(self):
        if self.row_count < 0:
            raise CatalogError("row_count must be non-negative")
        if self.row_width <= 0:
            raise CatalogError("row_width must be positive")
        # Freeze the mapping so TableStatistics is safely shareable.
        object.__setattr__(self, "columns", dict(self.columns))

    def pages(self, page_size: int = DEFAULT_PAGE_SIZE) -> int:
        """Number of pages the table occupies (at least one)."""
        rows_per_page = max(1, page_size // self.row_width)
        return max(1, math.ceil(self.row_count / rows_per_page))

    def column(self, name: str) -> Optional[ColumnStatistics]:
        """Statistics for ``name``, or None when unknown."""
        return self.columns.get(name)

    def with_qualified_columns(self, qualifier: str) -> "TableStatistics":
        """Return statistics whose column keys are qualified by ``qualifier``."""
        return TableStatistics(
            row_count=self.row_count,
            row_width=self.row_width,
            columns={
                name if "." in name else f"{qualifier}.{name}": stats
                for name, stats in self.columns.items()
            },
        )

    def with_prefixed_columns(self, prefix: str) -> "TableStatistics":
        """Statistics with every column key renamed to ``prefix.name``."""
        return TableStatistics(
            row_count=self.row_count,
            row_width=self.row_width,
            columns={
                f"{prefix}.{name}": stats for name, stats in self.columns.items()
            },
        )


def uniform_column(distinct: float, low: float = 0, high: Optional[float] = None) -> ColumnStatistics:
    """Statistics for a uniformly distributed numeric column."""
    if high is None:
        high = low + max(0.0, distinct - 1)
    return ColumnStatistics(distinct_values=distinct, min_value=low, max_value=high)
