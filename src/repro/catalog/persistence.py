"""Save and load catalogs as JSON.

Lets users bring their own schema/statistics (and optionally data) to
the optimizer — e.g. ``python -m repro.sql --catalog mydb.json`` — and
lets experiments pin their inputs to a file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Column, ColumnType, Schema
from repro.catalog.statistics import ColumnStatistics, TableStatistics
from repro.errors import CatalogError

__all__ = ["save_catalog", "load_catalog", "catalog_to_dict", "catalog_from_dict"]

FORMAT_VERSION = 1


def catalog_to_dict(catalog: Catalog, include_rows: bool = True) -> dict:
    """A JSON-serializable snapshot of a catalog."""
    tables = []
    for entry in catalog.tables():
        statistics = entry.statistics
        table = {
            "name": entry.name,
            "schema": [
                {"name": c.name, "type": c.type.value, "width": c.width}
                for c in entry.schema
            ],
            "statistics": {
                "row_count": statistics.row_count,
                "row_width": statistics.row_width,
                "columns": {
                    name: {
                        "distinct_values": cs.distinct_values,
                        "min_value": cs.min_value,
                        "max_value": cs.max_value,
                    }
                    for name, cs in statistics.columns.items()
                },
            },
        }
        if include_rows and entry.has_rows:
            table["rows"] = entry.rows
        tables.append(table)
    return {
        "format": "repro-catalog",
        "version": FORMAT_VERSION,
        "page_size": catalog.page_size,
        "tables": tables,
    }


def catalog_from_dict(data: dict) -> Catalog:
    """Rebuild a catalog from :func:`catalog_to_dict` output."""
    if data.get("format") != "repro-catalog":
        raise CatalogError("not a repro catalog file")
    if data.get("version") != FORMAT_VERSION:
        raise CatalogError(
            f"unsupported catalog format version {data.get('version')!r}"
        )
    catalog = Catalog(page_size=data.get("page_size", 4096))
    for table in data.get("tables", []):
        schema = Schema(
            tuple(
                Column(c["name"], ColumnType(c["type"]), c.get("width"))
                for c in table["schema"]
            )
        )
        stats_data = table["statistics"]
        statistics = TableStatistics(
            row_count=stats_data["row_count"],
            row_width=stats_data["row_width"],
            columns={
                name: ColumnStatistics(
                    cs["distinct_values"], cs.get("min_value"), cs.get("max_value")
                )
                for name, cs in stats_data.get("columns", {}).items()
            },
        )
        catalog.add_table(
            table["name"], schema, statistics, rows=table.get("rows")
        )
    return catalog


def save_catalog(
    catalog: Catalog,
    path: Union[str, Path],
    include_rows: bool = True,
) -> None:
    """Write a catalog (optionally with stored rows) to a JSON file."""
    Path(path).write_text(
        json.dumps(catalog_to_dict(catalog, include_rows=include_rows))
    )


def load_catalog(path: Union[str, Path]) -> Catalog:
    """Read a catalog from a JSON file produced by :func:`save_catalog`."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise CatalogError(f"cannot load catalog from {path}: {error}") from error
    return catalog_from_dict(data)
