"""The relational select–project–join model — the paper's test data model.

Section 4.2 of the paper evaluates the generated optimizers on "a rather
small 'data model' consisting of relational select and join operators
only", with "the same operators (get, select, join) and algorithms (file
scan, filter for selections, sort, merge-join, hybrid hash join)".  This
module is that model specification, slightly enriched:

* ``project`` and a combined ``select(get) → filter_scan`` implementation
  rule demonstrate the paper's "complex mappings" (multiple logical
  operators implemented by a single physical operator);
* sorting is an *enforcer* ("Sorting was modeled as an enforcer in
  Volcano"), with the cost of a single-level merge as in the paper;
* "Hash join was presumed to proceed without partition files", i.e. no
  I/O of its own;
* transformation rules (join commutativity and associativity) permit
  "generating all plans including bushy ones".
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.algebra.expressions import LogicalExpression
from repro.algebra.predicates import (
    Predicate,
    conjunction_of,
    equi_join_pairs,
    split_conjuncts,
)
from repro.algebra.properties import ANY_PROPS, LogicalProperties, PhysProps
from repro.model.cost import CpuIoCost
from repro.model.patterns import AnyPattern, OpPattern
from repro.model.rules import ImplementationRule, TransformationRule
from repro.model.spec import (
    AlgorithmDef,
    EnforcerApplication,
    EnforcerDef,
    LogicalOperatorDef,
    ModelSpecification,
)

__all__ = [
    "CostConstants",
    "RelationalModelOptions",
    "relational_model",
    "get",
    "select",
    "join",
    "project",
]


# ---------------------------------------------------------------------------
# Expression builders (the logical algebra's public face)
# ---------------------------------------------------------------------------


def get(table: str, alias: Optional[str] = None) -> LogicalExpression:
    """Scan a stored relation, optionally under an alias (for self-joins)."""
    return LogicalExpression("get", (table, alias))


def select(input_expression: LogicalExpression, predicate: Predicate) -> LogicalExpression:
    """Keep the rows of ``input_expression`` satisfying ``predicate``."""
    return LogicalExpression("select", (predicate,), (input_expression,))


def join(
    left: LogicalExpression, right: LogicalExpression, predicate: Predicate
) -> LogicalExpression:
    """Join two inputs on ``predicate`` (``TRUE`` for a Cartesian product)."""
    return LogicalExpression("join", (predicate,), (left, right))


def project(input_expression: LogicalExpression, columns: Sequence[str]) -> LogicalExpression:
    """Keep only ``columns`` (no duplicate removal, as in the paper)."""
    return LogicalExpression("project", (tuple(columns),), (input_expression,))


# ---------------------------------------------------------------------------
# Cost model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CostConstants:
    """Per-unit CPU and I/O constants of the relational cost functions.

    CPU constants are in "cost units per tuple"; one page I/O is worth
    ``io_weight`` CPU units.  The defaults make hash join the fastest way
    to join *unsorted* inputs while merge join wins once its inputs are
    already sorted — the interesting-orderings regime the paper's quality
    comparison hinges on.
    """

    cpu_tuple: float = 1.0        # producing/consuming one tuple
    cpu_pred: float = 0.5         # evaluating a predicate once
    cpu_build: float = 3.0        # inserting one build tuple into a hash table
    cpu_probe: float = 2.0        # probing the hash table with one tuple
    cpu_merge: float = 1.0        # advancing merge join by one input tuple
    cpu_output: float = 0.5       # emitting one result tuple
    cpu_sort: float = 0.25        # one comparison during sorting (× n·log₂n)
    io_weight: float = 100.0      # CPU units per page I/O

    def zero(self) -> CpuIoCost:
        """The zero cost under this model's I/O weight."""
        return CpuIoCost(0.0, 0.0, self.io_weight)

    def make(self, cpu: float = 0.0, io: float = 0.0) -> CpuIoCost:
        """A cost value under this model's I/O weight."""
        return CpuIoCost(cpu, io, self.io_weight)


def _pages(props: LogicalProperties, page_size: int) -> float:
    """Pages occupied by an intermediate result with the given properties."""
    row_width = max(1, props.schema.row_width)
    rows_per_page = max(1, page_size // row_width)
    return max(1.0, math.ceil(props.cardinality / rows_per_page))


# ---------------------------------------------------------------------------
# Options
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RelationalModelOptions:
    """Feature switches of the relational model.

    ``allow_cross_products``
        Let associativity introduce predicate-less joins (and enable
        nested loops to execute them).  Off by default so the logical
        search space matches the Ono–Lohman counts the paper cites.
    ``enable_nested_loops``
        Add a nested-loops join algorithm (required for cross products;
        not part of the paper's experiment).
    ``enable_filter_scan``
        Add the combined ``select(get) → filter_scan`` implementation
        rule (a "complex mapping").
    ``select_pushdown``
        Add selection push-down/merge transformation rules.  The Figure 4
        workloads arrive with selections already pushed onto base
        relations, matching the paper's setup, so this is off by default.
    ``max_merge_key_permutations``
        Up to this many equi-join key columns, merge join offers every
        key permutation as an alternative sort order (the paper's
        "number of physical property vectors to be tried").
    """

    allow_cross_products: bool = False
    enable_nested_loops: bool = False
    enable_filter_scan: bool = True
    select_pushdown: bool = False
    include_project: bool = True
    max_merge_key_permutations: int = 3
    cost: CostConstants = field(default_factory=CostConstants)


# ---------------------------------------------------------------------------
# Logical property functions (paper item 10, logical half)
# ---------------------------------------------------------------------------


def _get_props(context, args, input_props) -> LogicalProperties:
    table_name, alias = args
    entry = context.catalog.table(table_name)
    schema, statistics = entry.schema, entry.statistics
    if alias is not None:
        schema = schema.prefixed(alias)
        statistics = statistics.with_prefixed_columns(alias)
    return LogicalProperties(
        schema=schema,
        cardinality=float(statistics.row_count),
        column_stats=dict(statistics.columns),
        tables=frozenset((alias or table_name,)),
    )


def _scale_stats(column_stats, selectivity: float, row_count: float) -> dict:
    return {
        name: stats.scaled(selectivity, row_count)
        for name, stats in column_stats.items()
    }


def _select_props(context, args, input_props) -> LogicalProperties:
    (predicate,) = args
    source = input_props[0]
    selectivity = context.selectivity(predicate, source.column_stats)
    cardinality = source.cardinality * selectivity
    return LogicalProperties(
        schema=source.schema,
        cardinality=cardinality,
        column_stats=_scale_stats(source.column_stats, selectivity, cardinality),
        tables=source.tables,
    )


def _join_props(context, args, input_props) -> LogicalProperties:
    (predicate,) = args
    left, right = input_props
    combined_stats = {**left.column_stats, **right.column_stats}
    selectivity = context.selectivity(predicate, combined_stats)
    cardinality = left.cardinality * right.cardinality * selectivity
    # Column statistics are NOT capped by the output cardinality here:
    # logical properties belong to the whole equivalence class, so they
    # must be identical for every join order (the memo's consistency
    # check enforces this).  Capping distinct counts by intermediate
    # cardinalities would make the estimate depend on the derivation.
    return LogicalProperties(
        schema=left.schema.concat(right.schema),
        cardinality=cardinality,
        column_stats=combined_stats,
        tables=left.tables | right.tables,
    )


def _project_props(context, args, input_props) -> LogicalProperties:
    (columns,) = args
    source = input_props[0]
    schema = source.schema.project(columns)
    return LogicalProperties(
        schema=schema,
        cardinality=source.cardinality,
        column_stats={
            name: stats
            for name, stats in source.column_stats.items()
            if name in schema
        },
        tables=source.tables,
    )


# ---------------------------------------------------------------------------
# Algorithm support functions (applicability / cost / physical properties)
# ---------------------------------------------------------------------------

# Pure-function memo size cap.  The support-function caches below key on
# immutable algebra values (predicates, column-name frozensets, physical
# property vectors); the same few hundred keys recur tens of thousands of
# times per optimization, so a plain dict with an overflow flush is all
# the policy needed.
_MEMO_LIMIT = 65536
_MISSING = object()

_equi_pairs_cache: dict = {}


def _equi_pairs(predicate, left_columns, right_columns):
    """Cached :func:`equi_join_pairs` (pure in its hashable arguments)."""
    key = (predicate, left_columns, right_columns)
    hit = _equi_pairs_cache.get(key, _MISSING)
    if hit is _MISSING:
        hit = equi_join_pairs(predicate, left_columns, right_columns)
        if len(_equi_pairs_cache) >= _MEMO_LIMIT:
            _equi_pairs_cache.clear()
        _equi_pairs_cache[key] = hit
    return hit


def _unsorted_only(required: PhysProps) -> bool:
    """True when a plain serial, unsorted result satisfies ``required``."""
    return ANY_PROPS.covers(required)


def _file_scan_algorithm(constants: CostConstants) -> AlgorithmDef:
    def applicability(context, node, required):
        # Heap files deliver no order; only the empty requirement is met.
        if not _unsorted_only(required):
            return []
        return [()]

    def cost(context, node):
        # Stored tables are paged by their on-disk row width, which the
        # statistics carry (schemas describe only the columns in play).
        table_name, alias = node.args
        entry = context.catalog.table(table_name)
        pages = entry.statistics.pages(context.catalog.page_size)
        rows = float(entry.statistics.row_count)
        return constants.make(cpu=rows * constants.cpu_tuple, io=pages)

    def derive_props(context, node, input_props):
        return ANY_PROPS

    return AlgorithmDef("file_scan", applicability, cost, derive_props)


def _filter_algorithm(constants: CostConstants) -> AlgorithmDef:
    def applicability(context, node, required):
        # Filter preserves its input's properties: pass the requirement on.
        return [(required,)]

    def cost(context, node):
        source = node.inputs[0]
        # Evaluate the predicate per input row, re-emit surviving rows.
        cpu = (
            source.cardinality * constants.cpu_pred
            + node.output.cardinality * constants.cpu_output
        )
        return constants.make(cpu=cpu)

    def derive_props(context, node, input_props):
        return input_props[0]

    return AlgorithmDef("filter", applicability, cost, derive_props)


def _filter_scan_algorithm(constants: CostConstants) -> AlgorithmDef:
    """Combined scan + filter: one pass over the stored table."""

    def applicability(context, node, required):
        if not _unsorted_only(required):
            return []
        return [()]

    def cost(context, node):
        table_name, alias, predicate = node.args
        entry = context.catalog.table(table_name)
        pages = entry.statistics.pages(context.catalog.page_size)
        rows = float(entry.statistics.row_count)
        return constants.make(
            cpu=rows * (constants.cpu_tuple + constants.cpu_pred), io=pages
        )

    def derive_props(context, node, input_props):
        return ANY_PROPS

    return AlgorithmDef("filter_scan", applicability, cost, derive_props)


def _project_algorithm(constants: CostConstants) -> AlgorithmDef:
    def applicability(context, node, required):
        # Projection preserves order as long as the required sort columns
        # survive; pass the requirement through unchanged.
        return [(required,)]

    def cost(context, node):
        return constants.make(cpu=node.output.cardinality * constants.cpu_tuple * 0.25)

    def derive_props(context, node, input_props):
        # Order on projected-away columns is meaningless downstream, but
        # the names remain valid sort keys only if still in the schema.
        surviving = frozenset(node.output.schema.column_names)
        order = []
        for key in input_props[0].sort_order:
            kept = key & surviving
            if not kept:
                break
            order.append(kept)
        return replace(input_props[0], sort_order=tuple(order))

    return AlgorithmDef("project", applicability, cost, derive_props)


def _materialize_algorithm(constants: CostConstants) -> AlgorithmDef:
    """Write the input out once so several plans can scan it.

    Used only by the multi-query sharing pass
    (:func:`repro.search.sharing.plan_sharing`): ``applicability``
    returns no moves, so single-query search never considers it — the
    definition exists to price (and execute) shared intermediates in the
    model's own currency.
    """

    def applicability(context, node, required):
        return []

    def cost(context, node):
        source = node.inputs[0]
        pages = _pages(source, context.catalog.page_size)
        # One pass over the input, plus writing every page out.
        return constants.make(cpu=source.cardinality * constants.cpu_tuple, io=pages)

    def derive_props(context, node, input_props):
        return input_props[0]

    return AlgorithmDef("materialize", applicability, cost, derive_props, utility=True)


def _intermediate_scan_algorithm(constants: CostConstants) -> AlgorithmDef:
    """Read back a materialized intermediate (sharing pass only)."""

    def applicability(context, node, required):
        return []

    def cost(context, node):
        pages = _pages(node.output, context.catalog.page_size)
        return constants.make(cpu=node.output.cardinality * constants.cpu_tuple, io=pages)

    def derive_props(context, node, input_props):
        # The store preserves insertion order, so a scan delivers
        # whatever the producer delivered; the sharing pass stamps the
        # producer's physical properties onto the scan node directly.
        return ANY_PROPS

    return AlgorithmDef("scan_intermediate", applicability, cost, derive_props, utility=True)


def _merge_join_key_orders(
    pairs: Tuple[Tuple[str, str], ...],
    required: PhysProps,
    max_permutations: int,
) -> List[Tuple[Tuple[str, str], ...]]:
    """Key orderings merge join should try for this goal.

    With few keys, try every permutation (each is an alternative set of
    input property vectors, the paper's Section 3 feature); with many,
    try the canonical order plus — when the requirement names join
    columns — an order matching the requirement.
    """
    canonical = tuple(sorted(pairs))
    if len(pairs) <= max_permutations:
        return [tuple(perm) for perm in itertools.permutations(canonical)]
    orders = [canonical]
    if required.sort_order:
        matched = []
        rest = list(canonical)
        for key in required.sort_order:
            hit = next((pair for pair in rest if set(pair) & key), None)
            if hit is None:
                break
            matched.append(hit)
            rest.remove(hit)
        if matched:
            orders.append(tuple(matched) + tuple(rest))
    return orders


def _merge_join_algorithm(
    constants: CostConstants, max_permutations: int
) -> AlgorithmDef:
    memo: dict = {}

    def applicability(context, node, required):
        (predicate,) = node.args
        left, right = node.inputs
        key = (predicate, left.column_names, right.column_names, required)
        hit = memo.get(key)
        if hit is not None:
            return list(hit)
        pairs = _equi_pairs(predicate, left.column_names, right.column_names)
        alternatives = []
        if pairs:
            for order in _merge_join_key_orders(pairs, required, max_permutations):
                delivered = PhysProps(
                    sort_order=tuple(frozenset(pair) for pair in order)
                )
                if not delivered.covers(required):
                    continue
                left_req = PhysProps(sort_order=tuple(pair[0] for pair in order))
                right_req = PhysProps(sort_order=tuple(pair[1] for pair in order))
                alternatives.append((left_req, right_req))
        if len(memo) >= _MEMO_LIMIT:
            memo.clear()
        # Stored as a tuple (immutable); callers get a fresh list, the
        # applicability contract's return type.
        memo[key] = tuple(alternatives)
        return alternatives

    def cost(context, node):
        left, right = node.inputs
        cpu = (
            (left.cardinality + right.cardinality) * constants.cpu_merge
            + node.output.cardinality * constants.cpu_output
        )
        return constants.make(cpu=cpu)

    def derive_props(context, node, input_props):
        (predicate,) = node.args
        left, right = node.inputs
        pairs = _equi_pairs(predicate, left.column_names, right.column_names)
        lookup = {}
        for left_name, right_name in pairs or ():
            lookup.setdefault(left_name, set()).update((left_name, right_name))
            lookup.setdefault(right_name, set()).update((left_name, right_name))
        order = []
        for key in input_props[0].sort_order:
            # Each left sort key annexes the equivalent right-side names.
            merged = set(key)
            for name in key:
                merged |= lookup.get(name, set())
            order.append(frozenset(merged))
        return PhysProps(sort_order=tuple(order))

    return AlgorithmDef(
        "merge_join",
        applicability,
        cost,
        derive_props,
        requires=frozenset({"sort"}),
        delivers=frozenset({"sort"}),
    )


def _hash_join_algorithm(constants: CostConstants) -> AlgorithmDef:
    def applicability(context, node, required):
        (predicate,) = node.args
        left, right = node.inputs
        pairs = _equi_pairs(predicate, left.column_names, right.column_names)
        if not pairs:
            return []
        # "hybrid hash join does not qualify" for sorted output.
        if not _unsorted_only(required):
            return []
        return [(ANY_PROPS, ANY_PROPS)]

    def cost(context, node):
        left, right = node.inputs
        # "Hash join was presumed to proceed without partition files":
        # pure CPU, build on the left input, probe with the right.
        cpu = (
            left.cardinality * constants.cpu_build
            + right.cardinality * constants.cpu_probe
            + node.output.cardinality * constants.cpu_output
        )
        return constants.make(cpu=cpu)

    def derive_props(context, node, input_props):
        return ANY_PROPS

    return AlgorithmDef("hybrid_hash_join", applicability, cost, derive_props)


def _nested_loops_algorithm(constants: CostConstants) -> AlgorithmDef:
    def applicability(context, node, required):
        if not _unsorted_only(required):
            return []
        return [(ANY_PROPS, ANY_PROPS)]

    def cost(context, node):
        left, right = node.inputs
        cpu = (
            left.cardinality * right.cardinality * constants.cpu_pred
            + node.output.cardinality * constants.cpu_output
        )
        return constants.make(cpu=cpu)

    def derive_props(context, node, input_props):
        return ANY_PROPS

    return AlgorithmDef("nested_loops_join", applicability, cost, derive_props)


def _sort_enforcer(constants: CostConstants) -> EnforcerDef:
    def enforce(context, required, output_props):
        if not required.sort_order:
            return []
        return [
            EnforcerApplication(
                args=(required.sort_order,),
                delivered=required,
                relaxed=required.without_sort(),
                excluded=PhysProps(sort_order=required.sort_order),
            )
        ]

    def cost(context, node):
        source = node.inputs[0]
        rows = max(2.0, source.cardinality)
        cpu = rows * math.log2(rows) * constants.cpu_sort
        # "sorting costs were calculated based on a single-level merge":
        # write the runs once, read them back once.
        pages = _pages(source, context.catalog.page_size)
        return constants.make(cpu=cpu, io=2 * pages)

    return EnforcerDef("sort", enforce, cost, provides=frozenset({"sort"}))


# ---------------------------------------------------------------------------
# Transformation rules
# ---------------------------------------------------------------------------


def _join_commute_rule() -> TransformationRule:
    pattern = OpPattern(
        "join", (AnyPattern("left"), AnyPattern("right")), args_as="predicate"
    )

    def rewrite(binding, context):
        (predicate,) = binding["predicate"]
        return join(binding["right"], binding["left"], predicate)

    return TransformationRule(
        "join_commute", pattern, rewrite, promise=1.0, factor=0.05
    )


def _join_associate_rule(allow_cross_products: bool) -> TransformationRule:
    """``(a ⋈ b) ⋈ c  →  a ⋈ (b ⋈ c)`` with predicate routing (Figure 3)."""
    pattern = OpPattern(
        "join",
        (
            OpPattern("join", (AnyPattern("a"), AnyPattern("b")), args_as="p1"),
            AnyPattern("c"),
        ),
        args_as="p2",
    )

    memo: dict = {}

    def condition(binding, context):
        if allow_cross_products:
            return True
        inner, top = _route_predicates(binding, context)
        return not inner.is_true and not top.is_true

    def rewrite(binding, context):
        inner_predicate, top_predicate = _route_predicates(binding, context)
        inner = join(binding["b"], binding["c"], inner_predicate)
        return join(binding["a"], inner, top_predicate)

    def _route_predicates(binding, context):
        # Pure in (p1, p2, b columns, c columns) — and evaluated twice
        # per firing (condition then rewrite) on bindings that recur
        # across groups, so the memo hit rate is high.
        (p1,) = binding["p1"]
        (p2,) = binding["p2"]
        b_columns = context.logical_props(binding["b"]).column_names
        c_columns = context.logical_props(binding["c"]).column_names
        key = (p1, p2, b_columns, c_columns)
        hit = memo.get(key)
        if hit is None:
            combined = conjunction_of([p1, p2])
            hit = split_conjuncts(combined, b_columns | c_columns)
            if len(memo) >= _MEMO_LIMIT:
                memo.clear()
            memo[key] = hit
        return hit

    # A slightly lower promise than commutativity: associativity grows the
    # search space (it creates new equivalence classes, Figure 3), so a
    # promise threshold between 0.8 and 1.0 turns the search into a
    # commutations-only heuristic — the ablation benchmarks exploit this.
    return TransformationRule(
        "join_associate", pattern, rewrite, condition=condition, promise=0.8,
        factor=0.15,
    )


def _select_merge_rule() -> TransformationRule:
    pattern = OpPattern(
        "select",
        (OpPattern("select", (AnyPattern("x"),), args_as="p2"),),
        args_as="p1",
    )

    def rewrite(binding, context):
        (p1,) = binding["p1"]
        (p2,) = binding["p2"]
        return select(binding["x"], conjunction_of([p1, p2]))

    return TransformationRule("select_merge", pattern, rewrite, factor=0.1)


def _select_push_into_join_rule() -> TransformationRule:
    """``σ_p (l ⋈ r)``: push the conjuncts of ``p`` to the side(s) they fit."""
    pattern = OpPattern(
        "select",
        (
            OpPattern(
                "join", (AnyPattern("l"), AnyPattern("r")), args_as="pj"
            ),
        ),
        args_as="ps",
    )

    memo: dict = {}

    def _split(ps, left_columns, right_columns):
        key = (ps, left_columns, right_columns)
        hit = memo.get(key)
        if hit is None:
            left_part, rest = split_conjuncts(ps, left_columns)
            right_part, keep = split_conjuncts(rest, right_columns)
            hit = (left_part, right_part, keep)
            if len(memo) >= _MEMO_LIMIT:
                memo.clear()
            memo[key] = hit
        return hit

    def condition(binding, context):
        (ps,) = binding["ps"]
        left_columns = context.logical_props(binding["l"]).column_names
        right_columns = context.logical_props(binding["r"]).column_names
        left_part, right_part, _ = _split(ps, left_columns, right_columns)
        return not left_part.is_true or not right_part.is_true

    def rewrite(binding, context):
        (ps,) = binding["ps"]
        (pj,) = binding["pj"]
        left_columns = context.logical_props(binding["l"]).column_names
        right_columns = context.logical_props(binding["r"]).column_names
        left_part, right_part, keep = _split(ps, left_columns, right_columns)
        left = binding["l"] if left_part.is_true else select(binding["l"], left_part)
        right = (
            binding["r"] if right_part.is_true else select(binding["r"], right_part)
        )
        joined = join(left, right, pj)
        return joined if keep.is_true else select(joined, keep)

    return TransformationRule(
        "select_push_into_join", pattern, rewrite, condition=condition, factor=0.3
    )


# ---------------------------------------------------------------------------
# The model specification
# ---------------------------------------------------------------------------


def relational_model(
    options: Optional[RelationalModelOptions] = None,
) -> ModelSpecification:
    """Build the relational model specification of the paper's Section 4."""
    options = options or RelationalModelOptions()
    constants = options.cost
    spec = ModelSpecification(
        name="relational",
        zero_cost=constants.zero,
    )

    # Logical operators (paper item 1).
    spec.add_operator(LogicalOperatorDef("get", 0, _get_props))
    spec.add_operator(LogicalOperatorDef("select", 1, _select_props))
    spec.add_operator(LogicalOperatorDef("join", 2, _join_props))
    if options.include_project:
        spec.add_operator(LogicalOperatorDef("project", 1, _project_props))

    # Algorithms and enforcers (paper items 3, 8, 9, 10).
    spec.add_algorithm(_file_scan_algorithm(constants))
    spec.add_algorithm(_filter_algorithm(constants))
    spec.add_algorithm(_merge_join_algorithm(constants, options.max_merge_key_permutations))
    spec.add_algorithm(_hash_join_algorithm(constants))
    if options.enable_filter_scan:
        spec.add_algorithm(_filter_scan_algorithm(constants))
    if options.enable_nested_loops or options.allow_cross_products:
        spec.add_algorithm(_nested_loops_algorithm(constants))
    if options.include_project:
        spec.add_algorithm(_project_algorithm(constants))
    # Multi-query sharing support: rule-less algorithms the search never
    # picks on its own; the sharing pass prices and plants them.
    spec.add_algorithm(_materialize_algorithm(constants))
    spec.add_algorithm(_intermediate_scan_algorithm(constants))
    spec.add_enforcer(_sort_enforcer(constants))

    # Transformation rules (paper item 2).
    spec.add_transformation(_join_commute_rule())
    spec.add_transformation(_join_associate_rule(options.allow_cross_products))
    if options.select_pushdown:
        spec.add_transformation(_select_merge_rule())
        spec.add_transformation(_select_push_into_join_rule())

    # Implementation rules (paper item 4).
    spec.add_implementation(
        ImplementationRule(
            "get_to_file_scan",
            OpPattern("get", (), args_as="t"),
            "file_scan",
            build_args=lambda binding, context: binding["t"],
        )
    )
    spec.add_implementation(
        ImplementationRule(
            "select_to_filter",
            OpPattern("select", (AnyPattern("input"),), args_as="p"),
            "filter",
            build_args=lambda binding, context: binding["p"],
        )
    )
    if options.enable_filter_scan:
        # A "complex mapping": two logical operators, one physical one.
        spec.add_implementation(
            ImplementationRule(
                "select_get_to_filter_scan",
                OpPattern(
                    "select", (OpPattern("get", (), args_as="t"),), args_as="p"
                ),
                "filter_scan",
                build_args=lambda binding, context: binding["t"] + binding["p"],
                promise=2.0,
            )
        )
    spec.add_implementation(
        ImplementationRule(
            "join_to_merge_join",
            OpPattern("join", (AnyPattern("l"), AnyPattern("r")), args_as="p"),
            "merge_join",
            build_args=lambda binding, context: binding["p"],
        )
    )
    spec.add_implementation(
        ImplementationRule(
            "join_to_hash_join",
            OpPattern("join", (AnyPattern("l"), AnyPattern("r")), args_as="p"),
            "hybrid_hash_join",
            build_args=lambda binding, context: binding["p"],
            promise=1.5,
        )
    )
    if options.enable_nested_loops or options.allow_cross_products:
        spec.add_implementation(
            ImplementationRule(
                "join_to_nested_loops",
                OpPattern("join", (AnyPattern("l"), AnyPattern("r")), args_as="p"),
                "nested_loops_join",
                build_args=lambda binding, context: binding["p"],
                promise=0.5,
            )
        )
    if options.include_project:
        spec.add_implementation(
            ImplementationRule(
                "project_to_project",
                OpPattern("project", (AnyPattern("input"),), args_as="cols"),
                "project",
                build_args=lambda binding, context: binding["cols"],
            )
        )
    spec.validate()
    return spec
