"""OODB extension: path expressions and the *assembledness* property.

"For query optimization in object-oriented systems, we plan on defining
'assembledness' of complex objects in memory as a physical property and
using the assembly operator described in [5] as the enforcer for this
property."  (paper, Section 4.1)

The model adds one logical operator:

``materialize(input, attribute, ref_table)``
    Follow the object reference ``attribute`` of each input object into
    ``ref_table`` and splice the referenced object's state into the row —
    Open OODB's "materialize or scope operator that captures the
    semantics of path expressions" (Section 6).

and two implementations:

``pointer_chase``
    Navigate reference by reference: one random page read per input
    object.  No property requirements.
``assembled_navigate``
    Follow references in memory; requires the input to be *assembled*
    (the referenced objects resident), a flag in the physical property
    vector that only the **assembly** enforcer provides.  Assembly
    batch-reads the referenced extent once — exactly the trade the
    assembly operator of Keller, Graefe & Maier was built for.

The optimizer picks pointer chasing for small inputs and
assembly + in-memory navigation once random reads dominate — a
cost-based choice over a *model-defined* physical property, which is the
extensibility point the paper advertises.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.algebra.expressions import LogicalExpression
from repro.algebra.properties import LogicalProperties, PhysProps
from repro.model.patterns import AnyPattern, OpPattern
from repro.model.rules import ImplementationRule, TransformationRule
from repro.model.spec import (
    AlgorithmDef,
    EnforcerApplication,
    EnforcerDef,
    LogicalOperatorDef,
    ModelSpecification,
)
from repro.models.relational import (
    RelationalModelOptions,
    relational_model,
    select,
)

__all__ = ["OodbModelOptions", "oodb_model", "materialize", "assembled"]


def assembled(ref_table: str) -> PhysProps:
    """Requirement: the objects of ``ref_table`` are resident in memory."""
    return PhysProps(flags=frozenset({("assembled", ref_table)}))


def materialize(input_expression, attribute: str, ref_table: str) -> LogicalExpression:
    """Follow ``attribute`` into ``ref_table``, extending each row."""
    return LogicalExpression(
        "materialize", (attribute, ref_table), (input_expression,)
    )


@dataclass(frozen=True)
class OodbModelOptions:
    cpu_navigate: float = 0.5       # following one in-memory reference
    assembly_cpu_per_object: float = 1.5
    relational: RelationalModelOptions = field(
        default_factory=RelationalModelOptions
    )


def _materialize_props(context, args, input_props) -> LogicalProperties:
    attribute, ref_table = args
    source = input_props[0]
    entry = context.catalog.table(ref_table)
    ref_schema = entry.schema
    ref_stats = entry.statistics
    return LogicalProperties(
        schema=source.schema.concat(ref_schema),
        cardinality=source.cardinality,
        column_stats={**source.column_stats, **dict(ref_stats.columns)},
        tables=source.tables | {ref_table},
    )


def _pointer_chase(options: OodbModelOptions) -> AlgorithmDef:
    constants = options.relational.cost

    def applicability(context, node, required):
        # Output objects are transient, not assembled; unsorted.
        if not PhysProps().covers(required):
            return []
        return [(PhysProps(),)]

    def cost(context, node):
        # One random page read per navigated object.
        io = node.output.cardinality
        cpu = node.output.cardinality * constants.cpu_tuple
        return constants.make(cpu=cpu, io=io)

    def derive_props(context, node, input_props):
        return PhysProps()

    return AlgorithmDef("pointer_chase", applicability, cost, derive_props)


def _assembled_navigate(options: OodbModelOptions) -> AlgorithmDef:
    constants = options.relational.cost

    def applicability(context, node, required):
        if not PhysProps().covers(required.without_flag("assembled")):
            return []
        # The input must have this path's referenced extent assembled;
        # that is the whole point.
        attribute, ref_table = node.args
        return [(assembled(ref_table),)]

    def cost(context, node):
        cpu = node.output.cardinality * options.cpu_navigate
        return constants.make(cpu=cpu)

    def derive_props(context, node, input_props):
        # Navigation keeps the input's order and residency.
        return input_props[0]

    return AlgorithmDef(
        "assembled_navigate",
        applicability,
        cost,
        derive_props,
        requires=frozenset({"flag:assembled"}),
    )


def _assembly_enforcer(options: OodbModelOptions) -> EnforcerDef:
    constants = options.relational.cost

    def enforce(context, required, output_props):
        applications = []
        for name, value in sorted(required.flags, key=str):
            if name != "assembled":
                continue
            flag = (name, value)
            applications.append(
                EnforcerApplication(
                    args=(value,),
                    delivered=required,
                    relaxed=replace(
                        required, flags=required.flags - {flag}
                    ),
                    excluded=PhysProps(flags=frozenset({flag})),
                )
            )
        return applications

    def cost(context, node):
        source = node.inputs[0]
        (ref_table,) = node.args
        # Batch-read the referenced extent once (sequentially), then
        # wire up in-memory references per object.
        pages = context.catalog.table(ref_table).statistics.pages(
            context.catalog.page_size
        )
        cpu = source.cardinality * options.assembly_cpu_per_object
        return constants.make(cpu=cpu, io=pages)

    return EnforcerDef(
        "assembly", enforce, cost, provides=frozenset({"flag:assembled"})
    )


def _select_past_materialize_rule() -> TransformationRule:
    """σ_p(materialize(x)) → materialize(σ_p(x)) when p ignores the path.

    Classic OODB rewrite: filter objects before navigating their
    references.  The condition code inspects the bound input's schema —
    the paper's "logical properties also include the type (or sort) of
    an intermediate result, which can be inspected by a rule's condition
    code".
    """
    pattern = OpPattern(
        "select",
        (OpPattern("materialize", (AnyPattern("x"),), args_as="m"),),
        args_as="p",
    )

    def condition(binding, context):
        (predicate,) = binding["p"]
        base_columns = context.logical_props(binding["x"]).column_names
        return predicate.columns() <= base_columns

    def rewrite(binding, context):
        (predicate,) = binding["p"]
        attribute, ref_table = binding["m"]
        return materialize(
            select(binding["x"], predicate), attribute, ref_table
        )

    return TransformationRule(
        "select_past_materialize", pattern, rewrite, condition=condition
    )


def oodb_model(options: Optional[OodbModelOptions] = None) -> ModelSpecification:
    """The relational model extended with path expressions and assembly."""
    options = options or OodbModelOptions()
    spec = relational_model(options.relational)
    spec.name = "oodb"
    spec.add_operator(LogicalOperatorDef("materialize", 1, _materialize_props))
    spec.add_algorithm(_pointer_chase(options))
    spec.add_algorithm(_assembled_navigate(options))
    spec.add_enforcer(_assembly_enforcer(options))
    spec.add_transformation(_select_past_materialize_rule())
    spec.add_implementation(
        ImplementationRule(
            "materialize_to_pointer_chase",
            OpPattern("materialize", (AnyPattern("x"),), args_as="m"),
            "pointer_chase",
            build_args=lambda binding, context: binding["m"],
        )
    )
    spec.add_implementation(
        ImplementationRule(
            "materialize_to_assembled_navigate",
            OpPattern("materialize", (AnyPattern("x"),), args_as="m"),
            "assembled_navigate",
            build_args=lambda binding, context: binding["m"],
        )
    )
    spec.validate()
    return spec
