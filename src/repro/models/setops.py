"""Set-operation extension: union, intersection, difference.

This model exists for two reasons the paper states explicitly:

* **Multiple alternative property vectors** (Sections 3 and 6): "for a
  sort-based implementation of intersection, i.e., an algorithm very
  similar to merge-join, any sort order of the two inputs will suffice
  as long as the two inputs are sorted in the same way.  […]  for the
  intersection of two inputs R and S with attributes A, B, and C where
  R is sorted on (A,B,C) and S is sorted on (B,A,C), both these sort
  orders can be specified by the optimizer implementor and will be
  optimized by the generated optimizer."  The merge-intersection's
  applicability function returns one alternative per candidate column
  order.
* **Cost-based set operations** (Section 5): the paper criticizes
  Starburst for optimizing union/intersection "using query rewrite
  heuristics and commutativity only" although "optimizing the union or
  intersection of N sets is very similar to optimizing a join of N
  relations"; here they run through the same cost-based search as joins.

Columns of the two inputs correspond positionally (union compatibility
is checked by rule condition code — the paper's "many-sorted algebra"
type check).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.algebra.expressions import LogicalExpression
from repro.algebra.properties import ANY_PROPS, LogicalProperties, PhysProps
from repro.model.patterns import AnyPattern, OpPattern
from repro.model.rules import ImplementationRule
from repro.model.spec import AlgorithmDef, LogicalOperatorDef, ModelSpecification
from repro.models.relational import (
    RelationalModelOptions,
    relational_model,
)

__all__ = [
    "SetOpsModelOptions",
    "setops_model",
    "union",
    "intersect",
    "except_",
]


def union(left, right, all: bool = False) -> LogicalExpression:
    """Bag (``all=True``) or set union of two union-compatible inputs."""
    return LogicalExpression("union", (all,), (left, right))


def intersect(left, right) -> LogicalExpression:
    """Set intersection of two union-compatible inputs."""
    return LogicalExpression("intersect", (), (left, right))


def except_(left, right) -> LogicalExpression:
    """Set difference (rows of left absent from right)."""
    return LogicalExpression("except", (), (left, right))


@dataclass(frozen=True)
class SetOpsModelOptions:
    """Options; estimation factors are the usual textbook heuristics."""

    intersect_fraction: float = 0.3   # |R ∩ S| ≈ fraction × min(|R|, |S|)
    except_fraction: float = 0.5      # |R − S| ≈ fraction × |R|
    max_order_permutations: int = 3   # alternative sort orders offered
    relational: RelationalModelOptions = field(
        default_factory=RelationalModelOptions
    )


# -- logical property functions -------------------------------------------------


def _union_props(context, args, input_props) -> LogicalProperties:
    (all_flag,) = args
    left, right = input_props
    cardinality = left.cardinality + right.cardinality
    if not all_flag:
        # Distinct union: bounded by the sum, floored by the larger side.
        cardinality = max(left.cardinality, right.cardinality, cardinality * 0.7)
    return LogicalProperties(
        schema=left.schema,
        cardinality=cardinality,
        column_stats=dict(left.column_stats),
        tables=left.tables | right.tables,
    )


def _make_intersect_props(fraction):
    def props(context, args, input_props):
        left, right = input_props
        return LogicalProperties(
            schema=left.schema,
            cardinality=fraction * min(left.cardinality, right.cardinality),
            column_stats=dict(left.column_stats),
            tables=left.tables | right.tables,
        )

    return props


def _make_except_props(fraction):
    def props(context, args, input_props):
        left, right = input_props
        return LogicalProperties(
            schema=left.schema,
            cardinality=fraction * left.cardinality,
            column_stats=dict(left.column_stats),
            tables=left.tables | right.tables,
        )

    return props


# -- condition code: union compatibility ------------------------------------------


def _union_compatible(binding, context) -> bool:
    left = context.logical_props(binding["l"]).schema
    right = context.logical_props(binding["r"]).schema
    return left.is_union_compatible(right)


# -- algorithms ---------------------------------------------------------------------


def _column_orders(left_schema, right_schema, limit: int):
    """Candidate positional column orders (the alternative sort orders)."""
    positions = tuple(range(len(left_schema)))
    if len(positions) <= limit:
        return list(itertools.permutations(positions))
    return [positions]


def _merge_set_algorithm(name, constants, limit, output_factor):
    """Sort-based intersection/difference: 'very similar to merge-join'."""

    def applicability(context, node, required):
        left, right = node.inputs
        alternatives = []
        for order in _column_orders(left.schema, right.schema, limit):
            left_names = [left.schema.columns[i].name for i in order]
            right_names = [right.schema.columns[i].name for i in order]
            delivered = PhysProps(
                sort_order=tuple(
                    frozenset({l, r}) for l, r in zip(left_names, right_names)
                )
            )
            if not delivered.covers(required):
                continue
            alternatives.append(
                (
                    PhysProps(sort_order=tuple(left_names)),
                    PhysProps(sort_order=tuple(right_names)),
                )
            )
        return alternatives

    def cost(context, node):
        left, right = node.inputs
        cpu = (
            (left.cardinality + right.cardinality) * constants.cpu_merge
            + node.output.cardinality * constants.cpu_output
        )
        return constants.make(cpu=cpu)

    def derive_props(context, node, input_props):
        left, right = node.inputs
        order = []
        right_by_position = {
            left.schema.columns[i].name: right.schema.columns[i].name
            for i in range(len(left.schema))
        }
        for key in input_props[0].sort_order:
            merged = set(key)
            for name in key:
                if name in right_by_position:
                    merged.add(right_by_position[name])
            order.append(frozenset(merged))
        return PhysProps(sort_order=tuple(order))

    return AlgorithmDef(
        name,
        applicability,
        cost,
        derive_props,
        requires=frozenset({"sort"}),
        delivers=frozenset({"sort"}),
    )


def _hash_set_algorithm(name, constants):
    """Hash-based intersection/difference: unsorted output."""

    def applicability(context, node, required):
        if not ANY_PROPS.covers(required):
            return []
        return [(ANY_PROPS, ANY_PROPS)]

    def cost(context, node):
        left, right = node.inputs
        cpu = (
            left.cardinality * constants.cpu_build
            + right.cardinality * constants.cpu_probe
            + node.output.cardinality * constants.cpu_output
        )
        return constants.make(cpu=cpu)

    def derive_props(context, node, input_props):
        return ANY_PROPS

    return AlgorithmDef(name, applicability, cost, derive_props)


def _union_all_algorithm(constants):
    def applicability(context, node, required):
        if not ANY_PROPS.covers(required):
            return []
        return [(ANY_PROPS, ANY_PROPS)]

    def cost(context, node):
        return constants.make(
            cpu=node.output.cardinality * constants.cpu_tuple * 0.25
        )

    def derive_props(context, node, input_props):
        return ANY_PROPS

    return AlgorithmDef("union_all_concat", applicability, cost, derive_props)


def _hash_union_algorithm(constants):
    def applicability(context, node, required):
        if not ANY_PROPS.covers(required):
            return []
        return [(ANY_PROPS, ANY_PROPS)]

    def cost(context, node):
        left, right = node.inputs
        cpu = (left.cardinality + right.cardinality) * constants.cpu_build
        return constants.make(cpu=cpu)

    def derive_props(context, node, input_props):
        return ANY_PROPS

    return AlgorithmDef("hash_union", applicability, cost, derive_props)


# -- transformations -----------------------------------------------------------------
#
# Deliberately none: commutativity of union/intersection is *not*
# equivalence-preserving under named-column semantics (the output schema
# takes the left operand's column names, so swapping the operands renames
# the result).  The engine's consistency check — the paper's "one of many
# consistency checks" — rejects such a rule at run time, which is exactly
# the kind of model bug it exists to catch; see
# tests/models/test_setops.py::test_commutativity_rejected_by_consistency_check.
# The cost-based content of the paper's set-operation discussion — the
# merge/hash choice and the alternative input sort orders — lives in the
# applicability functions above.


# -- the model -------------------------------------------------------------------------


def setops_model(options: Optional[SetOpsModelOptions] = None) -> ModelSpecification:
    """The relational model extended with cost-based set operations."""
    options = options or SetOpsModelOptions()
    constants = options.relational.cost
    spec = relational_model(options.relational)
    spec.name = "relational_setops"

    spec.add_operator(LogicalOperatorDef("union", 2, _union_props))
    spec.add_operator(
        LogicalOperatorDef(
            "intersect", 2, _make_intersect_props(options.intersect_fraction)
        )
    )
    spec.add_operator(
        LogicalOperatorDef("except", 2, _make_except_props(options.except_fraction))
    )

    spec.add_algorithm(_union_all_algorithm(constants))
    spec.add_algorithm(_hash_union_algorithm(constants))
    spec.add_algorithm(
        _merge_set_algorithm(
            "merge_intersect", constants, options.max_order_permutations, 1.0
        )
    )
    spec.add_algorithm(_hash_set_algorithm("hash_intersect", constants))
    spec.add_algorithm(
        _merge_set_algorithm(
            "merge_except", constants, options.max_order_permutations, 1.0
        )
    )
    spec.add_algorithm(_hash_set_algorithm("hash_except", constants))

    def args_of(name):
        return lambda binding, context: binding[name]

    binary = lambda op: OpPattern(op, (AnyPattern("l"), AnyPattern("r")), args_as="a")
    spec.add_implementation(
        ImplementationRule(
            "union_to_concat",
            binary("union"),
            "union_all_concat",
            condition=lambda binding, context: binding["a"] == (True,)
            and _union_compatible(binding, context),
            build_args=args_of("a"),
        )
    )
    spec.add_implementation(
        ImplementationRule(
            "union_to_hash",
            binary("union"),
            "hash_union",
            condition=_union_compatible,
            build_args=args_of("a"),
        )
    )
    spec.add_implementation(
        ImplementationRule(
            "intersect_to_merge",
            binary("intersect"),
            "merge_intersect",
            condition=_union_compatible,
            build_args=args_of("a"),
        )
    )
    spec.add_implementation(
        ImplementationRule(
            "intersect_to_hash",
            binary("intersect"),
            "hash_intersect",
            condition=_union_compatible,
            build_args=args_of("a"),
        )
    )
    spec.add_implementation(
        ImplementationRule(
            "except_to_merge",
            binary("except"),
            "merge_except",
            condition=_union_compatible,
            build_args=args_of("a"),
        )
    )
    spec.add_implementation(
        ImplementationRule(
            "except_to_hash",
            binary("except"),
            "hash_except",
            condition=_union_compatible,
            build_args=args_of("a"),
        )
    )
    spec.validate()
    return spec
