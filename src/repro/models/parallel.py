"""Parallel extension of the relational model: partitioning + exchange.

"Location and partitioning in parallel and distributed systems can be
enforced with a network and parallelism operator such as Volcano's
exchange operator."  (paper, Section 4.1)

This model adds to the relational specification:

* *partitioning* as a component of the physical property vector;
* the **exchange** enforcer, which repartitions its input across
  ``degree`` nodes (cost: every row crosses the interconnect);
* parallel join algorithms whose inputs must be *compatibly* partitioned
  on the join keys ("any partitioning of join inputs across multiple
  processing nodes is acceptable if both inputs are partitioned using
  compatible partitioning rules") and whose CPU cost divides by the
  degree of parallelism.

The optimizer thus faces the classic parallel trade-off: pay exchanges
to unlock divided join work, or stay serial.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.algebra.predicates import equi_join_pairs
from repro.algebra.properties import ANY_PROPS, Partitioning, PhysProps
from repro.model.patterns import AnyPattern, OpPattern
from repro.model.rules import ImplementationRule
from repro.model.spec import (
    AlgorithmDef,
    EnforcerApplication,
    EnforcerDef,
    ModelSpecification,
)
from repro.models.relational import RelationalModelOptions, relational_model

__all__ = ["ParallelModelOptions", "parallel_relational_model", "partitioned_on"]


@dataclass(frozen=True)
class ParallelModelOptions:
    """Parallel model knobs on top of the relational options."""

    degree: int = 4
    cpu_transfer: float = 0.8   # shipping one row through the exchange
    startup: float = 500.0      # per-exchange setup cost (processes, ports)
    relational: RelationalModelOptions = field(
        default_factory=RelationalModelOptions
    )


def partitioned_on(columns, degree: int) -> PhysProps:
    """Requirement: hash-partitioned on ``columns`` across ``degree`` nodes."""
    return PhysProps(partitioning=Partitioning("hash", tuple(columns), degree))


def _exchange_enforcer(options: ParallelModelOptions) -> EnforcerDef:
    constants = options.relational.cost

    def enforce(context, required, output_props):
        if required.partitioning is None:
            return []
        return [
            EnforcerApplication(
                args=(required.partitioning,),
                delivered=required,
                relaxed=required.without_partitioning(),
                excluded=PhysProps(partitioning=required.partitioning),
            )
        ]

    def cost(context, node):
        source = node.inputs[0]
        cpu = source.cardinality * options.cpu_transfer + options.startup
        return constants.make(cpu=cpu)

    return EnforcerDef(
        "exchange", enforce, cost, provides=frozenset({"partitioning"})
    )


def _parallel_hash_join(options: ParallelModelOptions) -> AlgorithmDef:
    constants = options.relational.cost
    degree = options.degree

    def applicability(context, node, required):
        (predicate,) = node.args
        left, right = node.inputs
        pairs = equi_join_pairs(predicate, left.column_names, right.column_names)
        if not pairs:
            return []
        alternatives = []
        for left_key, right_key in pairs:
            delivered = PhysProps(
                partitioning=Partitioning(
                    "hash", (frozenset({left_key, right_key}),), degree
                )
            )
            if not delivered.covers(required):
                continue
            alternatives.append(
                (
                    partitioned_on([left_key], degree),
                    partitioned_on([right_key], degree),
                )
            )
        return alternatives

    def cost(context, node):
        left, right = node.inputs
        cpu = (
            left.cardinality * constants.cpu_build
            + right.cardinality * constants.cpu_probe
            + node.output.cardinality * constants.cpu_output
        ) / degree
        return constants.make(cpu=cpu)

    def derive_props(context, node, input_props):
        (predicate,) = node.args
        left, right = node.inputs
        pairs = equi_join_pairs(predicate, left.column_names, right.column_names)
        left_partitioning = input_props[0].partitioning
        if left_partitioning is None:
            return ANY_PROPS
        # Annex the equivalent right-side key names, as merge join does
        # for sort orders.
        lookup = {}
        for left_key, right_key in pairs or ():
            lookup.setdefault(left_key, set()).update((left_key, right_key))
            lookup.setdefault(right_key, set()).update((left_key, right_key))
        keys = []
        for key in left_partitioning.keys:
            merged = set(key)
            for name in key:
                merged |= lookup.get(name, set())
            keys.append(frozenset(merged))
        return PhysProps(
            partitioning=Partitioning(
                left_partitioning.scheme, tuple(keys), left_partitioning.degree
            )
        )

    return AlgorithmDef(
        "parallel_hash_join",
        applicability,
        cost,
        derive_props,
        requires=frozenset({"partitioning"}),
        delivers=frozenset({"partitioning"}),
    )


def parallel_relational_model(
    options: Optional[ParallelModelOptions] = None,
) -> ModelSpecification:
    """The relational model plus partitioning, exchange, and parallel joins."""
    options = options or ParallelModelOptions()
    spec = relational_model(options.relational)
    spec.name = "parallel_relational"
    spec.add_enforcer(_exchange_enforcer(options))
    spec.add_algorithm(_parallel_hash_join(options))
    spec.add_implementation(
        ImplementationRule(
            "join_to_parallel_hash_join",
            OpPattern("join", (AnyPattern("l"), AnyPattern("r")), args_as="p"),
            "parallel_hash_join",
            build_args=lambda binding, context: binding["p"],
            promise=1.2,
        )
    )
    spec.validate()
    return spec
