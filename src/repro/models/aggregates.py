"""Grouping and aggregation for the relational model.

Not part of the paper's measured test model, but squarely within its
program: "operators consuming and producing bulk types" with a cost-based
choice among implementations.  Aggregation adds a second textbook case of
property-driven algorithm selection, next to merge join vs. hash join:

``hash_aggregate``
    Groups by hashing; accepts any input, delivers unsorted output.
``stream_aggregate``
    Groups a stream already sorted on the grouping columns — one group
    in memory at a time, pipelined, *and its output is sorted*.  Its
    applicability function demands input sorted on any permutation of
    the grouping columns (alternative property vectors again), so the
    optimizer can feed it from a merge join's interesting ordering for
    free.

The executor's :class:`~repro.executor.iterators.HashAggregate` and
:class:`~repro.executor.iterators.SortedAggregate` run these plans.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence, Tuple

from repro.algebra.expressions import LogicalExpression
from repro.algebra.properties import ANY_PROPS, LogicalProperties, PhysProps
from repro.catalog.schema import Column, ColumnType, Schema
from repro.catalog.statistics import ColumnStatistics
from repro.errors import ModelSpecError
from repro.model.patterns import AnyPattern, OpPattern
from repro.model.rules import ImplementationRule
from repro.model.spec import AlgorithmDef, LogicalOperatorDef, ModelSpecification
from repro.models.relational import RelationalModelOptions, relational_model

__all__ = ["aggregate", "AGGREGATE_FUNCTIONS", "add_aggregation", "aggregate_model"]

AGGREGATE_FUNCTIONS = ("count", "sum", "min", "max", "avg")

# (output name, function, input column or None for count)
AggregateSpec = Tuple[str, str, Optional[str]]


def aggregate(
    input_expression: LogicalExpression,
    group_by: Sequence[str],
    aggregates: Sequence[AggregateSpec],
) -> LogicalExpression:
    """Group ``input_expression`` by ``group_by`` and compute aggregates.

    ``aggregates`` are ``(output_name, function, column)`` triples; the
    column is ignored for ``count``.  An empty ``group_by`` produces the
    single-row grand total.
    """
    for _, function, _ in aggregates:
        if function not in AGGREGATE_FUNCTIONS:
            raise ModelSpecError(f"unknown aggregate function {function!r}")
    return LogicalExpression(
        "aggregate",
        (tuple(group_by), tuple(tuple(item) for item in aggregates)),
        (input_expression,),
    )


# ---------------------------------------------------------------------------
# Logical properties
# ---------------------------------------------------------------------------


def _output_column(source_schema: Schema, name: str, function: str, column) -> Column:
    if function == "count":
        return Column(name, ColumnType.INTEGER)
    if function == "avg":
        return Column(name, ColumnType.FLOAT)
    return Column(name, source_schema.column(column).type)


def _aggregate_props(context, args, input_props) -> LogicalProperties:
    group_by, aggregates = args
    source = input_props[0]
    columns = [source.schema.column(name) for name in group_by]
    columns += [
        _output_column(source.schema, name, function, column)
        for name, function, column in aggregates
    ]
    # Output cardinality: the number of distinct grouping combinations,
    # assuming independence, capped by the input size.
    groups = 1.0
    for name in group_by:
        stats = source.column_stat(name)
        groups *= stats.distinct_values if stats is not None else 10.0
    cardinality = max(1.0, min(source.cardinality, groups))
    column_stats = {
        name: source.column_stats[name]
        for name in group_by
        if name in source.column_stats
    }
    for name, function, _ in aggregates:
        column_stats[name] = ColumnStatistics(cardinality)
    return LogicalProperties(
        schema=Schema(tuple(columns)),
        cardinality=cardinality,
        column_stats=column_stats,
        tables=source.tables,
    )


# ---------------------------------------------------------------------------
# Algorithms
# ---------------------------------------------------------------------------


def _hash_aggregate_algorithm(constants) -> AlgorithmDef:
    def applicability(context, node, required):
        if not ANY_PROPS.covers(required):
            return []
        return [(ANY_PROPS,)]

    def cost(context, node):
        source = node.inputs[0]
        cpu = (
            source.cardinality * constants.cpu_build
            + node.output.cardinality * constants.cpu_output
        )
        return constants.make(cpu=cpu)

    def derive_props(context, node, input_props):
        return ANY_PROPS

    return AlgorithmDef("hash_aggregate", applicability, cost, derive_props)


def _stream_aggregate_algorithm(constants, max_permutations: int) -> AlgorithmDef:
    def applicability(context, node, required):
        group_by, _ = node.args
        if not group_by:
            # A grand total has one row: trivially "sorted".
            return [(ANY_PROPS,)] if ANY_PROPS.covers(required) else []
        columns = tuple(group_by)
        if len(columns) <= max_permutations:
            orders = itertools.permutations(columns)
        else:
            orders = [columns]
        alternatives = []
        for order in orders:
            delivered = PhysProps(sort_order=tuple(order))
            if not delivered.covers(required):
                continue
            alternatives.append((PhysProps(sort_order=tuple(order)),))
        return alternatives

    def cost(context, node):
        source = node.inputs[0]
        cpu = (
            source.cardinality * constants.cpu_merge
            + node.output.cardinality * constants.cpu_output
        )
        return constants.make(cpu=cpu)

    def derive_props(context, node, input_props):
        group_by, _ = node.args
        surviving = frozenset(group_by)
        order = []
        for key in input_props[0].sort_order:
            kept = key & surviving
            if not kept:
                break
            order.append(kept)
        return PhysProps(sort_order=tuple(order))

    return AlgorithmDef(
        "stream_aggregate",
        applicability,
        cost,
        derive_props,
        requires=frozenset({"sort"}),
        delivers=frozenset({"sort"}),
    )


# ---------------------------------------------------------------------------
# Wiring
# ---------------------------------------------------------------------------


def add_aggregation(
    spec: ModelSpecification,
    constants,
    max_permutations: int = 3,
) -> ModelSpecification:
    """Add the aggregate operator and its two algorithms to ``spec``."""
    spec.add_operator(LogicalOperatorDef("aggregate", 1, _aggregate_props))
    spec.add_algorithm(_hash_aggregate_algorithm(constants))
    spec.add_algorithm(_stream_aggregate_algorithm(constants, max_permutations))
    pattern = OpPattern("aggregate", (AnyPattern("x"),), args_as="a")
    spec.add_implementation(
        ImplementationRule(
            "aggregate_to_hash",
            pattern,
            "hash_aggregate",
            build_args=lambda binding, context: binding["a"],
            promise=1.5,
        )
    )
    spec.add_implementation(
        ImplementationRule(
            "aggregate_to_stream",
            pattern,
            "stream_aggregate",
            build_args=lambda binding, context: binding["a"],
        )
    )
    return spec


def aggregate_model(
    options: Optional[RelationalModelOptions] = None,
) -> ModelSpecification:
    """The relational model plus grouping/aggregation."""
    options = options or RelationalModelOptions()
    spec = relational_model(options)
    spec.name = "relational_aggregates"
    add_aggregation(spec, options.cost, options.max_merge_key_permutations)
    spec.validate()
    return spec
