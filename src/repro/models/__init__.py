"""Bundled model specifications (S10, S17, S18, S19)."""

from repro.models.aggregates import (
    AGGREGATE_FUNCTIONS,
    add_aggregation,
    aggregate,
    aggregate_model,
)
from repro.models.oodb import OodbModelOptions, assembled, materialize, oodb_model
from repro.models.parallel import (
    ParallelModelOptions,
    parallel_relational_model,
    partitioned_on,
)
from repro.models.relational import (
    CostConstants,
    RelationalModelOptions,
    get,
    join,
    project,
    relational_model,
    select,
)
from repro.models.setops import (
    SetOpsModelOptions,
    except_,
    intersect,
    setops_model,
    union,
)

__all__ = [
    "AGGREGATE_FUNCTIONS",
    "add_aggregation",
    "aggregate",
    "aggregate_model",
    "OodbModelOptions",
    "assembled",
    "materialize",
    "oodb_model",
    "ParallelModelOptions",
    "parallel_relational_model",
    "partitioned_on",
    "CostConstants",
    "RelationalModelOptions",
    "get",
    "join",
    "project",
    "relational_model",
    "select",
    "SetOpsModelOptions",
    "except_",
    "intersect",
    "setops_model",
    "union",
]
