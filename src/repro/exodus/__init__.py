"""The EXODUS optimizer generator baseline (S11)."""

from repro.exodus.engine import ExodusOptimizer, ExodusOptions, ExodusResult
from repro.exodus.mesh import Mesh, MeshNode, MeshStats, PhysicalChoice

__all__ = [
    "ExodusOptimizer",
    "ExodusOptions",
    "ExodusResult",
    "Mesh",
    "MeshNode",
    "MeshStats",
    "PhysicalChoice",
]
