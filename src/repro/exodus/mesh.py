"""MESH: the EXODUS optimizer generator's central data structure.

Reconstructed from the paper's Section 4 description of the EXODUS
prototype (and its references [2, 3]):

* "only one type of node existed in the hash table called MESH, which
  contained both a logical operator such as join and a physical algorithm
  such as hybrid hash join.  To retain equivalent plans using merge-join
  and hybrid hash join, the logical expression (or at least one node) had
  to be kept twice, resulting in a large number of nodes in MESH."
* "the organization of the MESH data structure […] was extremely
  cumbersome, both in its time and space complexities."

Our MESH keeps one node per *derived expression over specific child
nodes* (so equivalent expressions over equivalent-but-distinct children
duplicate nodes, as in EXODUS), and per node one retained physical choice
per applicable algorithm (the "kept twice" bookkeeping).  Equivalence
sets connect alternative derivations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.algebra.expressions import GROUP_LEAF, LogicalExpression
from repro.algebra.properties import LogicalProperties, PhysProps
from repro.errors import MemoryLimitExceededError
from repro.model.cost import Cost

__all__ = ["PhysicalChoice", "MeshNode", "Mesh", "MeshStats"]


@dataclass
class MeshStats:
    """Work and memory counters of one EXODUS optimization."""

    nodes_created: int = 0
    physical_choices: int = 0
    analyses: int = 0
    reanalyses: int = 0
    transformations_applied: int = 0
    queue_pushes: int = 0
    queue_stale_pops: int = 0
    equivalence_merges: int = 0
    elapsed_seconds: float = 0.0

    def mesh_size(self) -> int:
        """The paper's memory complaint: logical + physical node count."""
        return self.nodes_created + self.physical_choices

    def __str__(self) -> str:
        return (
            f"nodes={self.nodes_created} physical={self.physical_choices} "
            f"analyses={self.analyses} reanalyses={self.reanalyses} "
            f"transforms={self.transformations_applied} "
            f"merges={self.equivalence_merges} time={self.elapsed_seconds:.4f}s"
        )


@dataclass
class PhysicalChoice:
    """One retained (node, algorithm) combination with its cost analysis.

    ``input_requirements`` holds the sort order each input had to satisfy;
    ``implicit_sorts`` flags the inputs for which the child did not happen
    to deliver that order, so the cost includes an embedded sort — "the
    cost of enforcers had to be included in the cost function of other
    algorithms such as merge-join".
    """

    algorithm: str
    args: Tuple
    local_cost: Cost
    total_cost: Cost
    delivered: PhysProps
    input_nodes: Tuple[int, ...]
    input_requirements: Tuple[PhysProps, ...]
    implicit_sorts: Tuple[bool, ...]


class MeshNode:
    """One expression node of MESH (logical + attached physical choices)."""

    __slots__ = (
        "id",
        "operator",
        "args",
        "inputs",
        "props",
        "physical",
        "best",
        "eq",
        "parents",
    )

    def __init__(self, node_id, operator, args, inputs, props):
        self.id = node_id
        self.operator: str = operator
        self.args: Tuple = args
        self.inputs: Tuple[int, ...] = inputs
        self.props: LogicalProperties = props
        # Retained physical alternatives, one per algorithm (+ variant).
        self.physical: Dict[str, PhysicalChoice] = {}
        self.best: Optional[PhysicalChoice] = None
        self.eq: int = node_id  # equivalence set id (union-find root)
        self.parents: Set[int] = set()

    def __repr__(self) -> str:
        return f"MeshNode({self.id}, {self.operator})"


class Mesh:
    """The hash table of MESH nodes plus equivalence bookkeeping."""

    def __init__(self, stats: Optional[MeshStats] = None, node_budget: Optional[int] = None):
        self.stats = stats if stats is not None else MeshStats()
        self.node_budget = node_budget
        self.nodes: Dict[int, MeshNode] = {}
        self._table: Dict[Tuple, int] = {}
        self._eq_parent: Dict[int, int] = {}
        self._eq_members: Dict[int, List[int]] = {}
        self._next_id = 0

    # -- equivalence sets -----------------------------------------------------

    def eq_root(self, eq_id: int) -> int:
        """Representative id of an equivalence set (with path compression)."""
        root = eq_id
        while self._eq_parent.get(root, root) != root:
            root = self._eq_parent[root]
        while self._eq_parent.get(eq_id, eq_id) != eq_id:
            self._eq_parent[eq_id], eq_id = root, self._eq_parent[eq_id]
        return root

    def eq_members(self, eq_id: int) -> List[int]:
        """Node ids of every member of the equivalence set."""
        return self._eq_members[self.eq_root(eq_id)]

    def merge_eq(self, a: int, b: int) -> int:
        """Union two equivalence sets; returns the surviving root."""
        a, b = self.eq_root(a), self.eq_root(b)
        if a == b:
            return a
        if len(self._eq_members[a]) < len(self._eq_members[b]):
            a, b = b, a
        self._eq_parent[b] = a
        self._eq_members[a].extend(self._eq_members[b])
        del self._eq_members[b]
        self.stats.equivalence_merges += 1
        return a

    def eq_best_node(self, eq_id: int) -> MeshNode:
        """The cheapest analyzed member of an equivalence set."""
        best_node = None
        for member in self.eq_members(eq_id):
            node = self.nodes[member]
            if node.best is None:
                continue
            if best_node is None or node.best.total_cost < best_node.best.total_cost:
                best_node = node
        if best_node is None:
            raise RuntimeError(f"equivalence set {eq_id} has no analyzed member")
        return best_node

    def eq_parents(self, eq_id: int) -> Set[int]:
        """Ids of all nodes consuming any member of the set."""
        parents: Set[int] = set()
        for member in self.eq_members(eq_id):
            parents |= self.nodes[member].parents
        return parents

    # -- node creation ----------------------------------------------------------

    def intern(self, operator, args, inputs, props) -> Tuple[MeshNode, bool]:
        """Find or create the node for (operator, args, input node ids)."""
        key = (operator, args, inputs)
        existing = self._table.get(key)
        if existing is not None:
            return self.nodes[existing], False
        if self.node_budget is not None and len(self.nodes) >= self.node_budget:
            raise MemoryLimitExceededError(len(self.nodes), self.node_budget)
        node = MeshNode(self._next_id, operator, args, inputs, props)
        self._next_id += 1
        self.nodes[node.id] = node
        self._table[key] = node.id
        self._eq_parent[node.id] = node.id
        self._eq_members[node.id] = [node.id]
        for input_id in inputs:
            self.nodes[input_id].parents.add(node.id)
        self.stats.nodes_created += 1
        return node, True

    def insert_tree(self, expression: LogicalExpression, derive_props) -> MeshNode:
        """Insert an expression tree; ``GROUP_LEAF`` leaves reference nodes."""
        if expression.operator == GROUP_LEAF:
            return self.nodes[expression.args[0]]
        children = tuple(
            self.insert_tree(node, derive_props).id for node in expression.inputs
        )
        input_props = tuple(self.nodes[child].props for child in children)
        props = derive_props(expression.operator, expression.args, input_props)
        node, _ = self.intern(expression.operator, expression.args, children, props)
        return node

    def size(self) -> int:
        """Number of MESH nodes currently held."""
        return len(self.nodes)
