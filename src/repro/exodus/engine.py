"""The EXODUS optimizer generator baseline: forward chaining over MESH.

This is the comparison system of the paper's Section 4, rebuilt from its
description so Figure 4 can be regenerated.  It consumes the *same model
specification* as the Volcano engine (operators, rules, cost and property
functions) but searches the way the EXODUS prototype did:

* **Forward chaining.**  All applicable transformations are kept in a
  queue ordered by *expected cost improvement* = rule factor × current
  total cost of the node — "worst of all for optimizer performance […]
  nodes at the top of the expression (with high total cost) were
  preferred over lower expressions".
* **Transformation then immediate cost analysis.**  "In EXODUS, a
  transformation is always followed immediately by algorithm selection
  and cost analysis."
* **Consumer reanalysis.**  When a node's best plan changes, every
  consumer above is reanalyzed — "all consumer nodes above (of which
  there were many at this time) had to be reanalyzed creating an
  extremely large number of MESH nodes".
* **Haphazard physical properties.**  There are no property-driven
  goals: each node greedily keeps the cheapest algorithm given what its
  children *happen* to deliver; when merge join's inputs do not happen to
  be sorted, the sort cost is folded into merge join's own cost ("the
  cost of enforcers had to be included in the cost function of other
  algorithms").  Deliberately producing a sorted (locally pricier) child
  so a parent can merge-join cheaply is out of reach — the root cause of
  the plan-quality gap in Figure 4.
* **Memory aborts.**  A node budget models "the EXODUS optimizer
  generator aborted due to lack of memory" for complex queries.

Like the Volcano engine, this baseline is reentrant (per-run state lives
in a run object, not on the engine) and budget-governed: a
:class:`~repro.options.ResourceBudget` on :class:`ExodusOptions` bounds
the forward-chaining loop, and under ``best_effort`` a budget trip is
just another abort reason — the best plan found so far comes back with
``degraded=True`` and a :class:`~repro.options.BudgetReport`.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.algebra.expressions import GROUP_LEAF, LogicalExpression
from repro.algebra.plans import PhysicalPlan
from repro.algebra.properties import ANY_PROPS, PhysProps
from repro.catalog.catalog import Catalog
from repro.catalog.selectivity import SelectivityEstimator
from repro.errors import (
    BudgetExceededError,
    MemoryLimitExceededError,
    OptimizationFailedError,
    ReproError,
)
from repro.exodus.mesh import Mesh, MeshNode, MeshStats, PhysicalChoice
from repro.model.context import OptimizerContext
from repro.model.cost import Cost
from repro.model.spec import AlgorithmNode, ModelSpecification
from repro.options import (
    BudgetMeter,
    BudgetTripped,
    OptionsBase,
    ResourceBudget,
    check_positive,
)
from repro.search.engine import OptimizationResult, _resolve_props

__all__ = ["ExodusOptions", "ExodusResult", "ExodusOptimizer"]


@dataclass(frozen=True, kw_only=True)
class ExodusOptions(OptionsBase):
    """Budgets and policies of the EXODUS baseline.

    ``node_budget``
        MESH node limit; exceeding it aborts the optimization the way the
        real prototype ran out of memory.
    ``transformation_budget``
        Optional cap on rule applications (models "was aborted because it
        ran much longer").
    ``budget``
        A :class:`~repro.options.ResourceBudget` bounding the
        forward-chaining loop (deadline, costings, rule firings); under
        ``best_effort`` a trip aborts gracefully with ``degraded=True``.
    ``best_effort``
        When True (default), an abort returns the best plan found so far
        with ``aborted=True``; when False, the abort raises
        :class:`MemoryLimitExceededError` (or
        :class:`~repro.errors.BudgetExceededError` for budget trips).
    """

    node_budget: Optional[int] = 20_000
    transformation_budget: Optional[int] = None
    budget: Optional[ResourceBudget] = None
    best_effort: bool = True

    def validate(self) -> None:
        """Check field invariants; raise :class:`OptionsError` on failure."""
        check_positive("node_budget", self.node_budget)
        check_positive("transformation_budget", self.transformation_budget)


@dataclass
class ExodusResult(OptimizationResult):
    """Outcome of one EXODUS optimization.

    A plain :class:`~repro.search.OptimizationResult` (``stats`` holds
    :class:`MeshStats`; there is no memo) extended with the prototype's
    abort reporting.  A budget trip under ``best_effort`` sets both
    ``aborted`` and ``degraded`` (with ``budget_report``).
    """

    aborted: bool = False
    abort_reason: Optional[str] = None

    def __str__(self) -> str:
        status = f" (ABORTED: {self.abort_reason})" if self.aborted else ""
        return f"plan cost {self.cost}{status}\n{self.plan.pretty()}"


class _ExodusRun:
    """All per-run state of one EXODUS ``optimize()`` call."""

    __slots__ = ("options", "mesh", "context", "queue", "counter", "applied", "meter")

    def __init__(
        self,
        options: ExodusOptions,
        mesh: Mesh,
        context: OptimizerContext,
        meter: BudgetMeter,
    ):
        self.options = options
        self.mesh = mesh
        self.context = context
        self.queue: List = []
        self.counter = 0
        self.applied: Set = set()
        self.meter = meter


class ExodusOptimizer:
    """An optimizer with the EXODUS prototype's search behaviour."""

    def __init__(
        self,
        spec: ModelSpecification,
        catalog: Catalog,
        options: Optional[ExodusOptions] = None,
        estimator: Optional[SelectivityEstimator] = None,
    ):
        spec.validate()
        self.spec = spec
        self.catalog = catalog
        self.options = options or ExodusOptions()
        self.estimator = estimator
        self._transformations = {}
        for rule in spec.transformations:
            self._transformations.setdefault(rule.top_operator, []).append(rule)
        self._implementations = {}
        for rule in spec.implementations:
            self._implementations.setdefault(rule.top_operator, []).append(rule)

    # ------------------------------------------------------------------

    def optimize(
        self,
        query: LogicalExpression,
        props: Optional[PhysProps] = None,
        *,
        options: Optional[ExodusOptions] = None,
        required: Optional[PhysProps] = None,
    ) -> ExodusResult:
        """Optimize ``query``; ``props`` properties are glued on at the
        end (EXODUS had no property-driven search: "the ability to
        specify required physical properties and let these properties
        drive the optimization process was entirely absent").

        Conforms to the :class:`~repro.search.Optimizer` protocol:
        ``options`` overrides this instance's :class:`ExodusOptions` for
        one call, and ``required=`` survives as a deprecation shim.
        """
        props = _resolve_props(props, required)
        return self._optimize(query, props, options if options is not None else self.options)

    def _optimize(
        self,
        query: LogicalExpression,
        required: Optional[PhysProps],
        options: ExodusOptions,
    ) -> ExodusResult:
        required = required if required is not None else self.spec.any_props
        started = time.perf_counter()
        stats = MeshStats()
        context = OptimizerContext(self.spec, self.catalog, self.estimator)
        mesh = Mesh(stats, node_budget=options.node_budget)
        context.group_props_resolver = lambda node_id: mesh.nodes[node_id].props
        run = _ExodusRun(options, mesh, context, BudgetMeter(options.budget))
        aborted, abort_reason, report = False, None, None
        root = None
        try:
            try:
                root = self._materialize(run, query)
                self._forward_chain(run)
            except MemoryLimitExceededError:
                if not options.best_effort or root is None:
                    raise
                aborted, abort_reason = True, "memory"
            except BudgetTripped as trip:
                report = run.meter.report(trip.phase)
                if not options.best_effort or root is None:
                    raise BudgetExceededError(
                        f"EXODUS optimization budget exhausted "
                        f"({report.tripped} during {report.phase})",
                        report=report,
                        stats=stats,
                    ) from None
                aborted, abort_reason = True, trip.tripped
            if (
                not aborted
                and options.transformation_budget is not None
                and stats.transformations_applied >= options.transformation_budget
            ):
                aborted, abort_reason = True, "transformations"
            try:
                plan = self._extract(run, root.eq, required)
            except RuntimeError as error:  # no analyzed plan at all
                raise OptimizationFailedError(
                    f"EXODUS found no plan: {error}"
                ) from error
            return ExodusResult(
                plan=plan,
                cost=plan.cost,
                required=required,
                stats=stats,
                aborted=aborted,
                abort_reason=abort_reason,
                degraded=report is not None,
                budget_report=report,
            )
        except ReproError as error:
            if getattr(error, "stats", None) is None:
                error.stats = stats
            raise
        finally:
            stats.elapsed_seconds = time.perf_counter() - started

    # ------------------------------------------------------------------
    # Construction and analysis
    # ------------------------------------------------------------------

    def _derive_props(self, run: _ExodusRun, operator, args, input_props):
        return run.context.derive_logical_props(operator, args, input_props)

    def _materialize(self, run: _ExodusRun, expression: LogicalExpression) -> MeshNode:
        """Insert a tree, analyzing and queueing every new node bottom-up."""
        mesh = run.mesh
        if expression.operator == GROUP_LEAF:
            return mesh.nodes[expression.args[0]]
        children = tuple(
            self._materialize(run, node).id for node in expression.inputs
        )
        input_props = tuple(mesh.nodes[child].props for child in children)
        props = self._derive_props(
            run, expression.operator, expression.args, input_props
        )
        node, is_new = mesh.intern(
            expression.operator, expression.args, children, props
        )
        if is_new:
            self._analyze(run, node)
            self._enqueue_transformations(run, node)
        return node

    def _eq_members_view(self, run: _ExodusRun, node_id: int):
        """Pattern-matching callback over equivalence-set members."""
        for member in run.mesh.eq_members(run.mesh.nodes[node_id].eq):
            member_node = run.mesh.nodes[member]
            yield member_node.operator, member_node.args, member_node.inputs

    def _match(self, run: _ExodusRun, rule, node: MeshNode):
        from repro.model.patterns import match_memo

        return match_memo(
            rule.pattern,
            node.operator,
            node.args,
            node.inputs,
            lambda node_id: self._eq_members_view(run, node_id),
        )

    def _analyze(self, run: _ExodusRun, node: MeshNode, reanalysis: bool = False) -> bool:
        """Algorithm selection and cost analysis for one node.

        Returns True when the node's best choice changed.  This is where
        EXODUS's property handling lives: children are taken as they
        come, and unmet input orders are priced as embedded sorts.
        """
        context, stats = run.context, run.mesh.stats
        if reanalysis:
            stats.reanalyses += 1
        else:
            stats.analyses += 1
        previous = node.best.total_cost if node.best is not None else None
        node.physical.clear()
        node.best = None
        for rule in self._implementations.get(node.operator, ()):
            for binding in self._match(run, rule, node):
                if not rule.applies(binding, context):
                    continue
                args = (
                    tuple(rule.build_args(binding, context))
                    if rule.build_args is not None
                    else node.args
                )
                input_nodes = tuple(
                    binding[name].args[0] for name in rule.input_names
                )
                self._cost_algorithm(run, node, rule.algorithm, args, input_nodes)
        changed = (
            node.best is not None
            and (previous is None or node.best.total_cost != previous)
        )
        return changed

    def _cost_algorithm(self, run: _ExodusRun, node, algorithm_name, args, input_nodes) -> None:
        """EXODUS-style costing of one (node, algorithm) combination."""
        mesh, context = run.mesh, run.context
        algorithm = self.spec.algorithm(algorithm_name)
        input_props = tuple(mesh.nodes[i].props for i in input_nodes)
        algorithm_node = AlgorithmNode(args, node.props, input_props)
        alternatives = algorithm.applicability(context, algorithm_node, ANY_PROPS)
        if not alternatives:
            return
        for requirements in alternatives:
            run.meter.charge_costing()
            total = algorithm.cost(context, algorithm_node)
            actual_inputs: List[PhysProps] = []
            implicit: List[bool] = []
            feasible = True
            for input_id, requirement in zip(input_nodes, requirements):
                child = mesh.eq_best_node(mesh.nodes[input_id].eq)
                child_choice = child.best
                total = total + child_choice.total_cost
                if child_choice.delivered.covers(requirement):
                    # The child happens to deliver something useful:
                    # "this was recorded in MESH and used".
                    actual_inputs.append(child_choice.delivered)
                    implicit.append(False)
                    continue
                sort_cost = self._implicit_enforcer_cost(run, child, requirement)
                if sort_cost is None:
                    feasible = False
                    break
                total = total + sort_cost
                actual_inputs.append(requirement)
                implicit.append(True)
            if not feasible:
                continue
            delivered = algorithm.derive_props(
                context, algorithm_node, tuple(actual_inputs)
            )
            choice = PhysicalChoice(
                algorithm=algorithm_name,
                args=args,
                local_cost=algorithm.cost(context, algorithm_node),
                total_cost=total,
                delivered=delivered,
                input_nodes=input_nodes,
                input_requirements=tuple(requirements),
                implicit_sorts=tuple(implicit),
            )
            retained = node.physical.get(algorithm_name)
            if retained is None:
                mesh.stats.physical_choices += 1
                node.physical[algorithm_name] = choice
            elif choice.total_cost < retained.total_cost:
                node.physical[algorithm_name] = choice
            if node.best is None or choice.total_cost < node.best.total_cost:
                node.best = choice

    def _implicit_enforcer_cost(
        self, run: _ExodusRun, child: MeshNode, requirement
    ) -> Optional[Cost]:
        """Cost of enforcing ``requirement`` on a child, folded in as EXODUS did."""
        context = run.context
        for name, enforcer in self.spec.enforcers.items():
            for application in self.spec.enforcer_applications(
                name, context, requirement, child.props
            ):
                node = AlgorithmNode(application.args, child.props, (child.props,))
                return enforcer.cost(context, node)
        return None

    # ------------------------------------------------------------------
    # Forward chaining
    # ------------------------------------------------------------------

    def _freeze_binding(self, binding) -> Tuple:
        return tuple(sorted((name, value) for name, value in binding.items()))

    def _enqueue_transformations(self, run: _ExodusRun, node: MeshNode) -> None:
        for rule in self._transformations.get(node.operator, ()):
            for binding in self._match(run, rule, node):
                fingerprint = (rule.name, node.id, self._freeze_binding(binding))
                if fingerprint in run.applied:
                    continue
                improvement = self._expected_improvement(run, rule, node)
                run.counter += 1
                heapq.heappush(
                    run.queue,
                    (-improvement, run.counter, node.id, rule, dict(binding)),
                )
                run.mesh.stats.queue_pushes += 1

    def _expected_improvement(self, run: _ExodusRun, rule, node: MeshNode) -> float:
        """factor × current total cost — the EXODUS move-ordering heuristic."""
        try:
            best = run.mesh.eq_best_node(node.eq).best
        except RuntimeError:
            return rule.factor
        return rule.factor * best.total_cost.total()

    def _forward_chain(self, run: _ExodusRun) -> None:
        mesh, context, stats = run.mesh, run.context, run.mesh.stats
        budget = run.options.transformation_budget
        while run.queue:
            run.meter.check("forward_chaining")
            if budget is not None and stats.transformations_applied >= budget:
                return
            priority, _, node_id, rule, binding = heapq.heappop(run.queue)
            node = mesh.nodes[node_id]
            fingerprint = (rule.name, node_id, self._freeze_binding(binding))
            if fingerprint in run.applied:
                continue
            # Lazy priority maintenance: re-push when the node's cost moved.
            current = -self._expected_improvement(run, rule, node)
            if abs(current - priority) > 1e-9 and run.queue:
                stats.queue_stale_pops += 1
                run.counter += 1
                heapq.heappush(
                    run.queue, (current, run.counter, node_id, rule, binding)
                )
                continue
            run.applied.add(fingerprint)
            if not rule.applies(binding, context):
                continue
            results = rule.rewrite(binding, context)
            if results is None:
                continue
            if isinstance(results, LogicalExpression):
                results = [results]
            stats.transformations_applied += 1
            run.meter.charge_rule_firing()
            for expression in results:
                new_node = self._materialize(run, expression)
                if mesh.eq_root(new_node.eq) != mesh.eq_root(node.eq):
                    merged = mesh.merge_eq(node.eq, new_node.eq)
                    self._propagate_from(run, merged)
                # New class members can enable new nested-pattern matches
                # on every consumer of the class.
                for parent_id in mesh.eq_parents(node.eq):
                    self._enqueue_transformations(run, mesh.nodes[parent_id])
                self._enqueue_transformations(run, new_node)

    def _propagate_from(self, run: _ExodusRun, eq_id: int) -> None:
        """Reanalyze consumers transitively after a class's best changed."""
        mesh = run.mesh
        pending = set(mesh.eq_parents(eq_id))
        seen_rounds = 0
        while pending:
            seen_rounds += 1
            if seen_rounds > 1_000_000:
                raise RuntimeError("reanalysis did not converge")
            parent_id = pending.pop()
            parent = mesh.nodes[parent_id]
            if self._analyze(run, parent, reanalysis=True):
                pending |= mesh.eq_parents(parent.eq)

    # ------------------------------------------------------------------
    # Plan extraction
    # ------------------------------------------------------------------

    def _extract(
        self, run: _ExodusRun, eq_id: int, required: PhysProps = ANY_PROPS
    ) -> PhysicalPlan:
        mesh, context = run.mesh, run.context
        node = mesh.eq_best_node(eq_id)
        choice = node.best
        input_plans = []
        total = choice.local_cost
        actual_inputs: List[PhysProps] = []
        for input_id, requirement in zip(
            choice.input_nodes, choice.input_requirements
        ):
            child_plan = self._extract(run, mesh.nodes[input_id].eq, requirement)
            if not child_plan.properties.covers(requirement):
                child_plan = self._wrap_enforcer(run, child_plan, requirement, input_id)
            total = total + child_plan.cost
            input_plans.append(child_plan)
            actual_inputs.append(child_plan.properties)
        algorithm = self.spec.algorithm(choice.algorithm)
        algorithm_node = AlgorithmNode(
            choice.args,
            node.props,
            tuple(mesh.nodes[i].props for i in choice.input_nodes),
        )
        delivered = algorithm.derive_props(
            context, algorithm_node, tuple(actual_inputs)
        )
        plan = PhysicalPlan(
            choice.algorithm,
            choice.args,
            tuple(input_plans),
            properties=delivered,
            cost=total,
        )
        if not plan.properties.covers(required):
            plan = self._wrap_enforcer(run, plan, required, None, node=node)
        return plan

    def _wrap_enforcer(
        self, run: _ExodusRun, plan: PhysicalPlan, requirement: PhysProps,
        input_id, node=None,
    ) -> PhysicalPlan:
        mesh, context = run.mesh, run.context
        props = (
            mesh.nodes[input_id].props if input_id is not None else node.props
        )
        for enforcer_name, enforcer in self.spec.enforcers.items():
            for application in self.spec.enforcer_applications(
                enforcer_name, context, requirement, props
            ):
                algorithm_node = AlgorithmNode(application.args, props, (props,))
                cost = enforcer.cost(context, algorithm_node)
                return PhysicalPlan(
                    enforcer_name,
                    application.args,
                    (plan,),
                    properties=application.delivered,
                    cost=plan.cost + cost,
                    is_enforcer=True,
                )
        raise OptimizationFailedError(
            f"no enforcer delivers [{requirement}] for the extracted plan"
        )
