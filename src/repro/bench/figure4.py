"""Regenerate Figure 4: exhaustive optimization performance.

Paper, Section 4.2: "Figure 4 shows the average optimization effort and
[…] the estimated execution time of produced plans for queries with 1 to
7 binary joins, i.e., 2 to 8 input relations, and as many selections as
input relations.  Solid lines indicate optimization times […].  Dashed
lines indicate estimated plan execution times.  Note that the y-axis are
logarithmic.  […]  For each complexity level, we generated and optimized
50 queries.  For some of the more complex queries, the EXODUS optimizer
generator aborted due to lack of memory or was aborted because it ran
much longer than the Volcano optimizer generator.  […]  The data points
in Figure 4 represent only those queries for which the EXODUS optimizer
generator completed the optimization."

This harness reproduces all of it: per complexity level it reports the
average optimization time of both engines, the geometric-mean estimated
plan cost of the plans they produced, EXODUS abort counts (excluded from
the averages, as in the paper), and — for the memory discussion in the
surrounding text — memo vs. MESH footprints.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.exodus import ExodusOptimizer, ExodusOptions
from repro.lint.invariants import MemoAuditor
from repro.models.relational import relational_model
from repro.search import ResourceBudget, SearchOptions, VolcanoOptimizer
from repro.bench.reporting import Table, geometric_mean, render_log_chart
from repro.workloads import QueryGenerator, WorkloadOptions

__all__ = [
    "Figure4Config",
    "Figure4Row",
    "Figure4Result",
    "run_figure4",
    "render_figure4",
    "figure4_to_csv",
]


@dataclass(frozen=True)
class Figure4Config:
    """Experiment parameters (defaults: the paper's setup)."""

    sizes: Sequence[int] = tuple(range(2, 9))
    queries_per_size: int = 50
    seed: int = 1993
    workload: WorkloadOptions = field(default_factory=WorkloadOptions)
    exodus: ExodusOptions = field(
        default_factory=lambda: ExodusOptions(
            node_budget=1500, transformation_budget=1500
        )
    )
    volcano: SearchOptions = field(
        default_factory=lambda: SearchOptions(check_consistency=False)
    )
    # Audit every solved memo with repro.lint's MemoAuditor.  Cheap
    # relative to the search itself, and it turns the benchmark into a
    # soak test of the search invariants.
    audit_memos: bool = True
    # Bounded-latency mode: when set, every Volcano run carries a
    # ResourceBudget(deadline_seconds=deadline); degraded answers are
    # counted per complexity level (``Figure4Row.volcano_degraded``) and
    # their anytime plans still feed the cost columns, demonstrating the
    # latency/quality trade of graceful degradation.
    deadline: Optional[float] = None


@dataclass
class Figure4Row:
    """Aggregates for one complexity level (one x position in Figure 4)."""

    n_relations: int
    queries: int
    volcano_time: float                 # mean seconds per query
    exodus_time: Optional[float]        # mean over completed queries
    volcano_cost: float                 # geometric mean of plan cost
    exodus_cost: Optional[float]        # geometric mean over completed
    quality_ratio: Optional[float]      # mean exodus/volcano cost ratio
    exodus_aborts: int
    volcano_footprint: float            # memo groups + expressions (mean)
    exodus_footprint: Optional[float]   # MESH logical+physical (mean)
    audit_violations: int = 0           # MemoAuditor findings (should be 0)
    volcano_degraded: int = 0           # budget-tripped anytime answers


@dataclass
class Figure4Result:
    config: Figure4Config
    rows: List[Figure4Row] = field(default_factory=list)


def run_figure4(config: Optional[Figure4Config] = None, progress=None) -> Figure4Result:
    """Run the experiment; ``progress`` (if given) receives status lines."""
    config = config or Figure4Config()
    generator = QueryGenerator(config.workload)
    spec = relational_model()
    volcano_options = config.volcano
    if config.deadline is not None:
        volcano_options = volcano_options.replace(
            budget=ResourceBudget(deadline_seconds=config.deadline)
        )
    result = Figure4Result(config=config)
    for size in config.sizes:
        volcano_times: List[float] = []
        volcano_costs: List[float] = []
        volcano_footprints: List[float] = []
        exodus_times: List[float] = []
        exodus_costs: List[float] = []
        exodus_footprints: List[float] = []
        ratios: List[float] = []
        aborts = 0
        degraded = 0
        auditor = MemoAuditor() if config.audit_memos else None
        for query in generator.generate_batch(
            size, config.queries_per_size, seed=config.seed
        ):
            volcano = VolcanoOptimizer(spec, query.catalog, volcano_options)
            if auditor is not None:
                auditor.attach(volcano)
            started = time.perf_counter()
            volcano_result = volcano.optimize(query.query, query.required)
            volcano_times.append(time.perf_counter() - started)
            volcano_costs.append(volcano_result.cost.total())
            volcano_footprints.append(volcano_result.stats.memo_footprint())
            if volcano_result.degraded:
                degraded += 1

            exodus = ExodusOptimizer(spec, query.catalog, config.exodus)
            started = time.perf_counter()
            exodus_result = exodus.optimize(query.query, query.required)
            elapsed = time.perf_counter() - started
            if exodus_result.aborted:
                # "The data points in Figure 4 represent only those
                # queries for which the EXODUS optimizer generator
                # completed the optimization."
                aborts += 1
            else:
                exodus_times.append(elapsed)
                exodus_costs.append(exodus_result.cost.total())
                exodus_footprints.append(exodus_result.stats.mesh_size())
                ratios.append(
                    exodus_result.cost.total() / volcano_result.cost.total()
                )
        row = Figure4Row(
            n_relations=size,
            queries=config.queries_per_size,
            volcano_time=statistics.mean(volcano_times),
            exodus_time=statistics.mean(exodus_times) if exodus_times else None,
            volcano_cost=geometric_mean(volcano_costs),
            exodus_cost=geometric_mean(exodus_costs) if exodus_costs else None,
            quality_ratio=statistics.mean(ratios) if ratios else None,
            exodus_aborts=aborts,
            volcano_footprint=statistics.mean(volcano_footprints),
            exodus_footprint=(
                statistics.mean(exodus_footprints) if exodus_footprints else None
            ),
            audit_violations=len(auditor.violations) if auditor else 0,
            volcano_degraded=degraded,
        )
        result.rows.append(row)
        if progress is not None:
            progress(
                f"n={size}: volcano {row.volcano_time * 1000:.1f} ms, "
                f"exodus "
                + (
                    f"{row.exodus_time * 1000:.1f} ms"
                    if row.exodus_time is not None
                    else "all aborted"
                )
                + f", aborts {aborts}/{config.queries_per_size}"
                + (
                    f", degraded {degraded}/{config.queries_per_size}"
                    if config.deadline is not None
                    else ""
                )
                + (
                    f", AUDIT VIOLATIONS {row.audit_violations}"
                    if row.audit_violations
                    else ""
                )
            )
            if auditor is not None:
                for violation in auditor.violations:
                    progress("  " + violation.render())
    return result


def render_figure4(result: Figure4Result) -> str:
    """Tables + log-scale charts mirroring the figure's two line pairs."""
    table = Table(
        "Figure 4 — Exhaustive Optimization Performance",
        [
            "relations",
            "volcano ms",
            "exodus ms",
            "time ratio",
            "volcano cost",
            "exodus cost",
            "cost ratio",
            "aborts",
        ],
    )
    for row in result.rows:
        time_ratio = (
            row.exodus_time / row.volcano_time if row.exodus_time else None
        )
        table.add_row(
            row.n_relations,
            row.volcano_time * 1000,
            row.exodus_time * 1000 if row.exodus_time is not None else "—",
            f"{time_ratio:.1f}x" if time_ratio else "—",
            row.volcano_cost,
            row.exodus_cost if row.exodus_cost is not None else "—",
            f"{row.quality_ratio:.2f}x" if row.quality_ratio else "—",
            f"{row.exodus_aborts}/{row.queries}",
        )
    table.add_note(
        "EXODUS columns average only completed optimizations, as in the paper."
    )
    if result.config.deadline is not None:
        total_degraded = sum(row.volcano_degraded for row in result.rows)
        table.add_note(
            f"Bounded-latency mode: deadline {result.config.deadline * 1000:.0f} ms "
            f"per query; {total_degraded} degraded (anytime) Volcano answers "
            "feed the cost columns."
        )
    total_violations = sum(row.audit_violations for row in result.rows)
    if result.config.audit_memos:
        table.add_note(
            f"Memo invariant audit (repro.lint): {total_violations} "
            "violation(s) across all runs."
        )
    memory = Table(
        "Figure 4 (text) — Memory: memo vs. MESH footprint (nodes)",
        ["relations", "volcano memo", "exodus MESH", "ratio"],
    )
    for row in result.rows:
        ratio = (
            row.exodus_footprint / row.volcano_footprint
            if row.exodus_footprint
            else None
        )
        memory.add_row(
            row.n_relations,
            row.volcano_footprint,
            row.exodus_footprint if row.exodus_footprint is not None else "—",
            f"{ratio:.1f}x" if ratio else "—",
        )
    sizes = [row.n_relations for row in result.rows]
    time_chart = render_log_chart(
        "Optimization time per query [ms, log scale] (solid lines in Figure 4)",
        sizes,
        [
            ("volcano", "o", [row.volcano_time * 1000 for row in result.rows]),
            (
                "exodus",
                "#",
                [
                    row.exodus_time * 1000 if row.exodus_time is not None else None
                    for row in result.rows
                ],
            ),
        ],
    )
    cost_chart = render_log_chart(
        "Estimated plan execution cost [log scale] (dashed lines in Figure 4)",
        sizes,
        [
            ("volcano", "o", [row.volcano_cost for row in result.rows]),
            (
                "exodus",
                "#",
                [row.exodus_cost for row in result.rows],
            ),
        ],
    )
    return "\n\n".join([table.render(), memory.render(), time_chart, cost_chart])


def figure4_to_csv(result: Figure4Result) -> str:
    """The experiment's rows as CSV (for external plotting tools)."""
    lines = [
        "n_relations,queries,volcano_ms,exodus_ms,volcano_cost,exodus_cost,"
        "quality_ratio,exodus_aborts,volcano_footprint,exodus_footprint,"
        "audit_violations,volcano_degraded"
    ]
    for row in result.rows:
        cells = [
            row.n_relations,
            row.queries,
            round(row.volcano_time * 1000, 4),
            round(row.exodus_time * 1000, 4) if row.exodus_time is not None else "",
            round(row.volcano_cost, 2),
            round(row.exodus_cost, 2) if row.exodus_cost is not None else "",
            round(row.quality_ratio, 4) if row.quality_ratio is not None else "",
            row.exodus_aborts,
            round(row.volcano_footprint, 1),
            round(row.exodus_footprint, 1) if row.exodus_footprint is not None else "",
            row.audit_violations,
            row.volcano_degraded,
        ]
        lines.append(",".join(str(cell) for cell in cells))
    return "\n".join(lines) + "\n"
