"""Benchmark harness (S20): Figure 4, ablations, validation."""

from repro.bench.figure4 import (
    Figure4Config,
    Figure4Result,
    Figure4Row,
    render_figure4,
    run_figure4,
)
from repro.bench.reporting import Table, geometric_mean, render_log_chart

__all__ = [
    "Figure4Config",
    "Figure4Result",
    "Figure4Row",
    "render_figure4",
    "run_figure4",
    "Table",
    "geometric_mean",
    "render_log_chart",
]
