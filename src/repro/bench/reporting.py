"""Tabular reporting for the benchmark harness.

The paper presents Figure 4 as two log-scale series; we regenerate the
underlying numbers as tables (one row per complexity level) plus a
simple logarithmic ASCII chart so the shape — who wins, by what factor,
where the curves bend — is visible in a terminal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence

__all__ = ["Table", "render_log_chart", "geometric_mean"]


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, the right average for log-scale quantities."""
    positive = [value for value in values if value > 0]
    if not positive:
        return 0.0
    return math.exp(sum(math.log(value) for value in positive) / len(positive))


@dataclass
class Table:
    """A titled table with formatted cells."""

    title: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        """Append one row of cells."""
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        """Append a footnote below the table."""
        self.notes.append(note)

    def render(self) -> str:
        """The table as aligned monospace text."""
        cells = [[_format(cell) for cell in row] for row in self.rows]
        widths = [len(header) for header in self.headers]
        for row in cells:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, "=" * len(self.title)]
        lines.append(
            "  ".join(header.ljust(width) for header, width in zip(self.headers, widths))
        )
        lines.append("  ".join("-" * width for width in widths))
        for row in cells:
            lines.append(
                "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _format(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.3f}"
    return str(cell)


def render_log_chart(
    title: str,
    x_values: Sequence[float],
    series: Sequence[tuple],
    width: int = 60,
    height: int = 16,
) -> str:
    """A log-y ASCII chart; ``series`` is ``[(label, marker, ys), …]``.

    ``None`` entries in a series are skipped (e.g. aborted EXODUS runs),
    matching the paper's "data points represent only those queries for
    which the EXODUS optimizer generator completed".
    """
    points = [
        value
        for _, _, ys in series
        for value in ys
        if value is not None and value > 0
    ]
    if not points:
        return f"{title}\n(no data)"
    low = math.log10(min(points))
    high = math.log10(max(points))
    if high - low < 1e-9:
        high = low + 1.0
    grid = [[" "] * width for _ in range(height)]
    x_low, x_high = min(x_values), max(x_values)
    span = max(1e-9, x_high - x_low)
    for _, marker, ys in series:
        for x, y in zip(x_values, ys):
            if y is None or y <= 0:
                continue
            column = int((x - x_low) / span * (width - 1))
            row = int((math.log10(y) - low) / (high - low) * (height - 1))
            grid[height - 1 - row][column] = marker
    lines = [title]
    lines.append(f"10^{high:.1f} +" + "-" * width)
    for row in grid:
        lines.append("       |" + "".join(row))
    lines.append(f"10^{low:.1f} +" + "-" * width)
    axis = "        "
    labels = {int((x - x_low) / span * (width - 1)): str(x) for x in x_values}
    rendered = list(" " * (width + 1))
    for column, label in labels.items():
        for offset, character in enumerate(label):
            if column + offset < len(rendered):
                rendered[column + offset] = character
    lines.append(axis + "".join(rendered))
    legend = "  ".join(f"{marker}={label}" for label, marker, _ in series)
    lines.append(f"       {legend}")
    return "\n".join(lines)
