"""Benchmark-regression harness: ``python -m repro.bench regress``.

Runs a small, fixed suite — the paper's Figure 4 points plus targeted
microbenchmarks of the optimizer's hot paths — and emits a JSON report
(``BENCH_results.json``) of medians, 95th percentiles, memo sizes, and
derivation-cache hit rates.  Compared against a committed baseline
(``BENCH_baseline.json``), it turns "the optimizer got slower" from a
vibe into a failing exit code.

Two kinds of metric, two kinds of tolerance:

* **wall-clock** metrics (``*_ms``, ``queries_per_second``) are noisy
  and machine-dependent, so the band is generous (default: fail only
  beyond 2.5x the baseline — wide enough for CI-runner variance, tight
  enough to catch a 3x slowdown);
* **count** metrics (memo groups/expressions, costings, union-find
  hops) are deterministic for a fixed seed, so the band is tight — a
  drift here means the *search* changed, not the machine;
* **hit-rate** metrics fail only when they drop (a cache getting
  *better* is not a regression).

The suite:

``figure4_n{4,6,8}``
    The Volcano engine over the paper's workload at three complexity
    levels, with :class:`repro.lint.MemoAuditor` attached to every run
    (``audit_violations`` must stay zero).
``memo_insert``
    Interning a deep join tree into a fresh memo — the hash-consing
    fast path.
``memo_merge``
    A long group-merge chain followed by canonical() resolution of
    every stale id — guards the union-find path compression
    (``canonical_hops`` grows linearly, not quadratically).
``binding_enum``
    A full rule-binding sweep over a solved memo, twice — the second
    sweep must be served almost entirely by the probe-validated
    binding cache.
``feedback_loop``
    The execution-feedback loop on the canonical drifted workload
    (:func:`repro.feedback.drifted_workload`): drift is detected by
    q-error, statistics refresh, and the re-optimized plan's measured
    work must beat the stale plan's.  The q-error and work counters
    are deterministic, so they live in the tight band.
``batch_throughput``
    :meth:`OptimizerService.optimize_many` over a shared-catalog batch,
    serial always, parallel when the machine has the cores for it
    (parallel numbers are recorded but never compared — they measure
    the machine, not the code).
``mqo_sharing``
    Multi-query optimization over a batch of 8 overlapping queries:
    one shared memo, then the greedy sharing pass.  The shared-group
    counters (materializations, candidates, consumer links, savings
    fraction) are deterministic for the fixed seed, so they live in
    the tight band; batch latency sits in the wall-clock band.
``promise_ordering``
    The learned-promise loop end to end: execute sorted chain joins
    (merge join is the observed winner there), then re-optimize both
    the chains and a generator workload with the trained
    :class:`repro.search.LearnedPromiseModel`.  Repeat-workload
    costings must *drop* (the bench asserts it) while every plan stays
    byte-identical, rule firings stay exactly equal, and a
    ``min_promise`` point run on both engines must agree on every
    pruning counter.
``verify_overhead``
    The largest Figure 4 point run plain versus certified-and-verified
    (:func:`repro.verify.verify_plan` over every winner).  The paired
    fractional overhead is held to an absolute cap — provenance
    certificates must stay effectively free — and every certificate
    must keep verifying (``verified_ok`` in the tight band).
``kernel_speedup``
    The largest Figure 4 point run interpreted versus with the
    generated specialized search kernel
    (``SearchOptions(kernel="specialized")``).  Plans must stay
    byte-identical and costing/rule-firing counters exactly equal
    (tight band at zero delta); the paired speedup ratio is held to an
    absolute floor — the kernel must never make the search slower.
``server_throughput``
    The optimizer server (:mod:`repro.server`) end to end over real
    sockets: an in-process :class:`~repro.server.ServerThread`, a cold
    fan-out of 8 concurrent clients on one query (single-flight must
    collapse it to exactly one engine run — the ``cold_*`` counters
    are deterministic and sit in the tight band), then a warm phase of
    concurrent clients hammering the cached plan for wire-format
    latency and throughput (wall-clock band).
"""

from __future__ import annotations

import contextlib
import gc
import json
import os
import platform
import statistics
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.lint.invariants import MemoAuditor
from repro.model.context import OptimizerContext
from repro.models.relational import relational_model
from repro.search import SearchOptions, VolcanoOptimizer
from repro.search.memo import Memo
from repro.service import OptimizerService, ServiceOptions
from repro.workloads import QueryGenerator, WorkloadOptions

__all__ = [
    "RegressConfig",
    "run_regress",
    "compare",
    "render_report",
    "apply_inflation",
]

Progress = Optional[Callable[[str], None]]


@dataclass(frozen=True)
class RegressConfig:
    """Suite parameters and tolerance bands."""

    sizes: Sequence[int] = (4, 6, 8)
    queries_per_size: int = 10
    seed: int = 1993
    micro_repeats: int = 5
    batch_queries: int = 16
    # Fail a wall-clock metric beyond baseline * (1 + time_tolerance).
    time_tolerance: float = 1.5
    # Fail a count metric outside baseline * (1 ± count_tolerance).
    count_tolerance: float = 0.05
    # Fail a hit-rate metric below baseline - rate_tolerance.
    rate_tolerance: float = 0.15
    # Fail the certified-serving bench when its fractional latency
    # overhead exceeds this absolute cap (the "< 10%" promise).
    verify_overhead_cap: float = 0.10
    # Fail the kernel bench when the specialized kernel's paired
    # speedup over the interpreted engine drops below this floor
    # (generous against machine noise; the kernel must never lose).
    kernel_speedup_floor: float = 0.95


def _median_ms(samples: List[float]) -> float:
    return statistics.median(samples) * 1000.0


def _p95_ms(samples: List[float]) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(0.95 * (len(ordered) - 1))))
    return ordered[index] * 1000.0


def _rate(hits: int, misses: int) -> float:
    total = hits + misses
    return hits / total if total else 0.0


@contextlib.contextmanager
def _quiesced_gc():
    """Hold the cyclic collector still while a ratio bench times.

    The ratio benches (``verify_overhead``, ``kernel_speedup``) compare
    two arms against tight absolute bands, and the arms allocate at
    different rates — certificates and kernels both add objects.  Run
    mid-suite, the process carries the earlier benches' live heap, so a
    generational collection landing inside one arm's timing window can
    swing the ratio by 30%+ while a fresh process measures ~0.  Collect
    the debris, freeze the inherited heap out of consideration, and
    disable collection for the duration; the wall-clock benches keep
    the collector on because their 2.5x band absorbs it.
    """
    gc.collect()
    gc.freeze()
    gc.disable()
    try:
        yield
    finally:
        gc.enable()
        gc.unfreeze()


# ---------------------------------------------------------------------------
# The benches
# ---------------------------------------------------------------------------


def _bench_figure4(config: RegressConfig, size: int) -> Dict[str, float]:
    """One Figure 4 point: Volcano over the paper's workload, audited."""
    spec = relational_model()
    generator = QueryGenerator()
    options = SearchOptions(check_consistency=False)
    times: List[float] = []
    groups: List[int] = []
    expressions: List[int] = []
    costings = 0
    binding_hits = binding_misses = 0
    moves_hits = moves_misses = 0
    violations = 0
    for query in generator.generate_batch(
        size, config.queries_per_size, seed=config.seed
    ):
        optimizer = VolcanoOptimizer(spec, query.catalog, options)
        auditor = MemoAuditor()
        auditor.attach(optimizer)
        started = time.perf_counter()
        result = optimizer.optimize(query.query, query.required)
        times.append(time.perf_counter() - started)
        stats = result.stats
        groups.append(stats.groups_created)
        expressions.append(stats.expressions_created)
        costings += stats.algorithm_costings
        binding_hits += stats.binding_cache_hits
        binding_misses += stats.binding_cache_misses
        moves_hits += stats.moves_cache_hits
        moves_misses += stats.moves_cache_misses
        violations += len(auditor.violations)
    return {
        "median_ms": _median_ms(times),
        "p95_ms": _p95_ms(times),
        "mean_groups": statistics.mean(groups),
        "mean_expressions": statistics.mean(expressions),
        "costings": costings,
        "binding_hit_rate": _rate(binding_hits, binding_misses),
        "moves_hit_rate": _rate(moves_hits, moves_misses),
        "audit_violations": violations,
    }


def _deep_join(names: Sequence[str]):
    from repro.models.relational import get, join
    from repro.algebra.predicates import eq

    tree = get(names[0])
    for index in range(1, len(names)):
        tree = join(
            tree, get(names[index]), eq(f"{names[0]}.k", f"{names[index]}.k")
        )
    return tree


def _micro_memo(config: RegressConfig, workload) -> Memo:
    spec = relational_model()
    context = OptimizerContext(spec, workload.catalog)
    memo = Memo(context, check_consistency=False)
    context.group_props_resolver = memo.logical_props
    return memo


def _bench_memo_insert(config: RegressConfig) -> Dict[str, float]:
    """Hash-consing fast path: intern one deep join tree, repeatedly."""
    workload = QueryGenerator().generate_shared(
        count=1, seed=config.seed, n_tables=8
    )
    names = [f"t{i}" for i in range(8)]
    tree = _deep_join(names)
    times: List[float] = []
    groups = expressions = 0
    for _ in range(max(config.micro_repeats, 3)):
        memo = _micro_memo(config, workload)
        started = time.perf_counter()
        for _ in range(50):
            memo.insert_expression(tree)
        times.append(time.perf_counter() - started)
        groups = memo.group_count()
        expressions = memo.expression_count()
    return {
        "median_ms": _median_ms(times),
        "groups": groups,
        "expressions": expressions,
    }


def _bench_memo_merge(config: RegressConfig) -> Dict[str, float]:
    """Union-find under a long merge chain: hops must stay linear."""
    workload = QueryGenerator().generate_shared(
        count=1, seed=config.seed, n_tables=8
    )
    chain = 200
    times: List[float] = []
    hops = 0
    for _ in range(max(config.micro_repeats, 3)):
        memo = _micro_memo(config, workload)
        from repro.models.relational import get, select
        from repro.algebra.predicates import Comparison, ComparisonOp, col, lit

        # ``chain`` structurally distinct single-table groups ...
        roots = [
            memo.insert_expression(
                select(
                    get("t0"),
                    Comparison(ComparisonOp.LE, col("t0.v"), lit(float(i))),
                )
            )
            for i in range(chain)
        ]
        started = time.perf_counter()
        # ... merged into one long union-find chain, then every stale id
        # resolved.  Path compression keeps total hops O(chain); without
        # it this loop is quadratic.
        for left, right in zip(roots, roots[1:]):
            memo._merge(left, right)
        for gid in roots:
            memo.canonical(gid)
        times.append(time.perf_counter() - started)
        hops = memo.stats.canonical_hops
    return {
        "median_ms": _median_ms(times),
        "canonical_hops": hops,
    }


def _bench_binding_enum(config: RegressConfig) -> Dict[str, float]:
    """Rule-binding sweeps over a solved memo; pass 2 must hit the cache."""
    spec = relational_model()
    query = QueryGenerator().generate(6, seed=config.seed)
    optimizer = VolcanoOptimizer(
        spec, query.catalog, SearchOptions(check_consistency=False)
    )
    result = optimizer.optimize(query.query, query.required)
    memo = result.memo
    rules = spec.transformations
    times: List[float] = []
    hits_before = memo.stats.binding_cache_hits
    misses_before = memo.stats.binding_cache_misses
    for _ in range(max(config.micro_repeats, 3)):
        started = time.perf_counter()
        bindings = 0
        for group in memo.groups():
            for mexpr in list(group.expressions):
                for rule in rules:
                    for _binding in memo.rule_bindings(
                        rule.name, rule.pattern, mexpr
                    ):
                        bindings += 1
        times.append(time.perf_counter() - started)
    return {
        "median_ms": _median_ms(times),
        "sweep_hit_rate": _rate(
            memo.stats.binding_cache_hits - hits_before,
            memo.stats.binding_cache_misses - misses_before,
        ),
    }


def _bench_feedback_loop(config: RegressConfig) -> Dict[str, float]:
    """The adaptive loop on the canonical drifted workload.

    Four ``OptimizerService.execute`` round trips: cold, warm, stale
    (the drifted run that detects q-error and refreshes statistics),
    and fresh (re-optimized after the refresh).  Everything but the
    wall clock is deterministic: the drift q-error, the number of
    refreshed tables, and the stale vs. fresh plans' measured work are
    exact counters, so they sit in the tight band — ``fresh_work`` must
    stay below ``stale_work`` or the loop stopped paying for itself.
    """
    from repro.feedback import FeedbackPolicy, drifted_workload

    scenario = drifted_workload(seed=7, growth=4)
    optimizer = VolcanoOptimizer(
        relational_model(), scenario.catalog, SearchOptions(check_consistency=False)
    )
    service = OptimizerService(
        optimizer,
        options=ServiceOptions(feedback_policy=FeedbackPolicy(max_q_error=2.0)),
    )
    times: List[float] = []

    def timed_execute(query):
        started = time.perf_counter()
        executed = service.execute(query)
        times.append(time.perf_counter() - started)
        return executed

    timed_execute(scenario.query)  # cold: optimize + run
    timed_execute(scenario.query)  # warm: cache hit + run
    scenario.grow()
    stale = timed_execute(scenario.query)  # drift detected, stats refreshed
    fresh = timed_execute(scenario.query)  # re-optimized against fresh stats
    histogram = service.feedback.q_error_histogram()
    return {
        "median_ms": _median_ms(times),
        "drift_q_error": stale.max_q_error,
        "refreshes": float(len(stale.refresh.refreshed) if stale.refresh else 0),
        "stale_work": stale.stats.work(),
        "fresh_work": fresh.stats.work(),
        "qerr_over_2": float(
            histogram.get("<=4", 0)
            + histogram.get("<=10", 0)
            + histogram.get(">10", 0)
        ),
    }


def _bench_batch_throughput(config: RegressConfig) -> Dict[str, float]:
    """optimize_many over a shared-catalog batch, serial (and parallel)."""
    spec = relational_model()
    workload = QueryGenerator().generate_shared(
        count=config.batch_queries,
        seed=config.seed,
        n_tables=8,
        relations=(3, 6),
    )
    queries = [q.query for q in workload.queries]
    required = workload.queries[0].required

    def service() -> OptimizerService:
        optimizer = VolcanoOptimizer(
            spec, workload.catalog, SearchOptions(check_consistency=False)
        )
        return OptimizerService(
            optimizer, options=ServiceOptions(parameterized=False)
        )

    started = time.perf_counter()
    service().optimize_many(queries, required)
    serial = time.perf_counter() - started
    metrics = {
        "median_ms": serial * 1000.0 / len(queries),
        "queries_per_second": len(queries) / serial,
    }
    # Parallel numbers measure the machine more than the code: recorded
    # for the curious, never compared against the baseline.
    if len(os.sched_getaffinity(0)) >= 4:
        started = time.perf_counter()
        service().optimize_many(queries, required, max_workers=4)
        parallel = time.perf_counter() - started
        metrics["parallel_queries_per_second"] = len(queries) / parallel
        metrics["parallel_speedup"] = serial / parallel
    return metrics


def _bench_mqo_sharing(config: RegressConfig) -> Dict[str, float]:
    """A batch of 8 overlapping queries through the shared-memo path.

    Every query selects at the same threshold, so filtered subtrees
    collide across queries in the shared memo and the greedy sharing
    pass has real material to work with.  The counters are exact for
    the fixed seed: a drift means the search or the sharing heuristic
    changed, not the machine.
    """
    spec = relational_model()
    workload = QueryGenerator(
        WorkloadOptions(selectivity_range=(0.1, 0.1))
    ).generate_shared(count=8, seed=7, n_tables=5, relations=(2, 4))
    queries = [q.query for q in workload.queries]
    required = workload.queries[0].required

    times: List[float] = []
    batch = None
    for _ in range(config.micro_repeats):
        optimizer = VolcanoOptimizer(
            spec, workload.catalog, SearchOptions(check_consistency=False)
        )
        service = OptimizerService(
            optimizer, options=ServiceOptions(parameterized=False)
        )
        started = time.perf_counter()
        batch = service.optimize_many(queries, required)
        times.append(time.perf_counter() - started)
    report = batch.sharing_report
    assert report is not None  # serial batch with >1 miss always runs it
    return {
        "median_ms": _median_ms(times),
        "p95_ms": _p95_ms(times),
        "shared_groups": float(report.materialized),
        "sharing_candidates": float(report.candidates_considered),
        "consumer_links": float(
            sum(plan.consumers for plan in report.shared_plans)
        ),
        "savings_fraction": report.savings / report.independent_total,
    }


def _bench_promise_ordering(config: RegressConfig) -> Dict[str, float]:
    """Learned promise ordering: repeat workloads must cost less.

    Phase 1 executes sorted chain joins over an executable catalog.
    Merge join is the observed winner there (hybrid hash does not
    qualify under a sort requirement), so the learned model's evidence
    lifts merge's implementation promise above hybrid hash's static
    1.5 — flipping the pursuit order inside every join goal — and each
    execution records a cost prior for its (query, goal) fingerprint.

    Phase 2 re-optimizes two repeat workloads with the trained model:

    * the chains themselves — the cost priors seed the root
      branch-and-bound limit (``bound_seeds``), with zero retries;
    * the generator workload — pure ordering: costings drop below the
      static pass (asserted), rule firings stay exactly equal, and
      every plan is byte-identical, pinning the order-independent
      ``(cost, rank, alternative)`` winner rule under a live model.

    A ``min_promise`` point then runs both engines with the trained
    model and heuristic pruning active; their ``moves_pruned`` and
    ``rules_fired`` counters — and their plans — must agree exactly.
    """
    from repro.algebra.predicates import eq
    from repro.algebra.properties import PhysProps
    from repro.catalog import Catalog
    from repro.executor import TableSpec, populate_catalog
    from repro.models.relational import get, join
    from repro.search import LearnedPromiseModel, TaskBasedOptimizer

    spec = relational_model()

    # -- phase 1: train on executed sorted chain joins -------------------
    train_catalog = Catalog()
    populate_catalog(
        train_catalog,
        [
            TableSpec("r", 300, key_distinct=50),
            TableSpec("s", 900, key_distinct=50),
            TableSpec("t", 600, key_distinct=50),
            TableSpec("u", 450, key_distinct=50),
        ],
        seed=7,
    )

    def chain(*tables):
        tree = get(tables[0])
        for index in range(1, len(tables)):
            tree = join(
                tree,
                get(tables[index]),
                eq(f"{tables[index - 1]}.k", f"{tables[index]}.k"),
            )
        return tree

    chains = [
        (chain("r", "s", "t"), PhysProps(sort_order=("r.k",))),
        (chain("s", "t", "u"), PhysProps(sort_order=("s.k",))),
        (chain("r", "t", "u"), PhysProps(sort_order=("r.k",))),
        (chain("r", "s", "t", "u"), PhysProps(sort_order=("r.k",))),
    ]
    model = LearnedPromiseModel(boost=0.75)
    trained = VolcanoOptimizer(
        spec,
        train_catalog,
        SearchOptions(check_consistency=False, promise_model=model),
    )
    service = OptimizerService(
        trained, options=ServiceOptions(promise_model=model)
    )
    for query, required in chains:
        service.execute(query, required)

    # -- phase 2a: repeat the chains — cost priors seed the root bound --
    static_chain = VolcanoOptimizer(
        spec, train_catalog, SearchOptions(check_consistency=False)
    )
    identical = seeds = retries = 0
    for query, required in chains:
        baseline = static_chain.optimize(query, required)
        repeat = trained.optimize(query, required)
        seeds += repeat.stats.bound_seeds
        retries += repeat.stats.bound_seed_retries
        if repeat.plan.to_sexpr() == baseline.plan.to_sexpr():
            identical += 1

    # -- phase 2b: the generator workload — pure ordering ----------------
    workload = QueryGenerator(
        WorkloadOptions(selectivity_range=(0.1, 0.1))
    ).generate_shared(count=8, seed=11, n_tables=6, relations=(2, 4))

    def sweep(promise_model):
        optimizer = VolcanoOptimizer(
            spec,
            workload.catalog,
            SearchOptions(check_consistency=False, promise_model=promise_model),
        )
        costings = fired = 0
        plans = []
        samples: List[float] = []
        for entry in workload.queries:
            started = time.perf_counter()
            result = optimizer.optimize(entry.query, PhysProps())
            samples.append(time.perf_counter() - started)
            costings += result.stats.algorithm_costings
            fired += result.stats.rules_fired
            plans.append(result.plan.to_sexpr())
        return costings, fired, plans, samples

    static_costings, static_fired, static_plans, _ = sweep(None)
    learned_costings, learned_fired, learned_plans, times = sweep(model)
    identical += sum(
        1 for a, b in zip(static_plans, learned_plans) if a == b
    )
    assert learned_costings < static_costings, (
        "learned ordering must reduce repeat-workload costings "
        f"({learned_costings} vs {static_costings})"
    )

    # -- min_promise point: both engines, identical pruning accounting --
    heuristic = SearchOptions(
        check_consistency=False, min_promise=0.9, promise_model=model
    )
    entry = workload.queries[0]
    pruned = parity_delta = 0
    counters = []
    for engine_cls in (VolcanoOptimizer, TaskBasedOptimizer):
        result = engine_cls(spec, workload.catalog, heuristic).optimize(
            entry.query, PhysProps()
        )
        counters.append(
            (
                result.stats.moves_pruned,
                result.stats.rules_fired,
                result.plan.to_sexpr(),
            )
        )
    pruned = counters[0][0]
    parity_delta = sum(
        1 for a, b in zip(counters[0], counters[1]) if a != b
    )
    return {
        "median_ms": _median_ms(times),
        "static_costings": float(static_costings),
        "learned_costings": float(learned_costings),
        "rule_firing_delta": float(abs(learned_fired - static_fired)),
        "plans_identical": float(identical),
        "bound_seeds": float(seeds),
        "bound_seed_retries": float(retries),
        "min_promise_pruned": float(pruned),
        "min_promise_parity_delta": float(parity_delta),
    }


def _bench_verify_overhead(config: RegressConfig) -> Dict[str, float]:
    """Certificate recording plus independent re-verification.

    The largest Figure 4 point, run both ways per query: the plain
    engine versus certificates on followed by
    :func:`repro.verify.verify_plan` over the winner.  The paired
    min-of-two design cancels warm-up asymmetry and the timing runs
    under :func:`_quiesced_gc` (mid-suite collector pauses would skew
    the ratio), so ``verify_overhead`` is the certified pipeline's real
    fractional latency cost; it is held to an absolute cap
    (:attr:`RegressConfig.verify_overhead_cap`) instead of the loose
    wall-clock band.
    """
    from repro.verify import verify_plan

    spec = relational_model()
    generator = QueryGenerator()
    size = max(config.sizes)
    plain = SearchOptions(check_consistency=False)
    certified = SearchOptions(check_consistency=False, certificates=True)
    base_times: List[float] = []
    verified_times: List[float] = []
    verified_ok = 0
    with _quiesced_gc():
        for query in generator.generate_batch(
            size, config.queries_per_size, seed=config.seed
        ):
            best_base = best_verified = float("inf")
            ok = False
            for _ in range(2):
                optimizer = VolcanoOptimizer(spec, query.catalog, plain)
                started = time.perf_counter()
                optimizer.optimize(query.query, query.required)
                best_base = min(best_base, time.perf_counter() - started)

                optimizer = VolcanoOptimizer(spec, query.catalog, certified)
                started = time.perf_counter()
                result = optimizer.optimize(query.query, query.required)
                report = verify_plan(
                    spec,
                    query.query,
                    result.plan,
                    result.certificate,
                    catalog=query.catalog,
                )
                best_verified = min(
                    best_verified, time.perf_counter() - started
                )
                ok = report.ok
            verified_ok += 1 if ok else 0
            base_times.append(best_base)
            verified_times.append(best_verified)
    overhead = sum(verified_times) / sum(base_times) - 1.0
    return {
        "median_ms": _median_ms(verified_times),
        "base_median_ms": _median_ms(base_times),
        "verify_overhead": max(0.0, overhead),
        "verified_ok": float(verified_ok),
    }


def _bench_kernel_speedup(config: RegressConfig) -> Dict[str, float]:
    """The specialized-kernel Figure 4 point, paired against interpreted.

    The largest Figure 4 point run both ways per query — the interpreted
    engine versus ``SearchOptions(kernel="specialized")`` (the generated
    per-model move loops; see :mod:`repro.generator.kernel`) — with a
    min-of-two per mode to cancel warm-up asymmetry, timed under
    :func:`_quiesced_gc` like every ratio bench.  The kernel only
    swaps binding enumerators, so the deterministic side must be
    *exactly* invariant: byte-identical plans, equal costing and
    rule-firing counters, zero auditor violations.  Those live in the
    tight band at zero-delta; the paired ``kernel_speedup`` ratio is
    held to an absolute floor (:attr:`RegressConfig.kernel_speedup_floor`)
    instead of the loose wall-clock band — the kernel must never make
    the search slower.
    """
    spec = relational_model()
    generator = QueryGenerator()
    size = max(config.sizes)
    interpreted = SearchOptions(check_consistency=False)
    kernelized = SearchOptions(check_consistency=False, kernel="specialized")
    interpreted_times: List[float] = []
    kernel_times: List[float] = []
    plans_identical = 0
    costings_delta = 0
    firings_delta = 0
    violations = 0
    with _quiesced_gc():
        for query in generator.generate_batch(
            size, config.queries_per_size, seed=config.seed
        ):
            best_interpreted = best_kernel = float("inf")
            base_result = kernel_result = None
            base_stats = kernel_stats = None
            for _ in range(2):
                optimizer = VolcanoOptimizer(spec, query.catalog, interpreted)
                started = time.perf_counter()
                base_result = optimizer.optimize(query.query, query.required)
                best_interpreted = min(
                    best_interpreted, time.perf_counter() - started
                )
                base_stats = base_result.stats

                optimizer = VolcanoOptimizer(spec, query.catalog, kernelized)
                auditor = MemoAuditor()
                auditor.attach(optimizer)
                started = time.perf_counter()
                kernel_result = optimizer.optimize(query.query, query.required)
                best_kernel = min(best_kernel, time.perf_counter() - started)
                kernel_stats = kernel_result.stats
                violations += len(auditor.violations)
            interpreted_times.append(best_interpreted)
            kernel_times.append(best_kernel)
            if (
                base_result.plan.to_sexpr() == kernel_result.plan.to_sexpr()
                and base_result.cost == kernel_result.cost
            ):
                plans_identical += 1
            costings_delta += abs(
                base_stats.algorithm_costings - kernel_stats.algorithm_costings
            )
            firings_delta += abs(
                base_stats.rule_bindings_tried
                - kernel_stats.rule_bindings_tried
            )
    return {
        "median_ms": _median_ms(kernel_times),
        "interpreted_median_ms": _median_ms(interpreted_times),
        "kernel_speedup": sum(interpreted_times) / sum(kernel_times),
        "plans_identical": float(plans_identical),
        "costings_delta": float(costings_delta),
        "rule_firing_delta": float(firings_delta),
        "audit_violations": violations,
    }


def _bench_server_throughput(config: RegressConfig) -> Dict[str, float]:
    """The optimizer server over real sockets: dedup then warm latency.

    Phase 1 (deterministic): 8 clients release through a barrier onto
    the same cold query.  The engine is wrapped with a short sleep so
    every follower provably arrives mid-flight; single-flight must then
    collapse the fan-out to exactly one run — 8 misses, 7 shared waits,
    1 insertion, in the tight band.  The delay never taints phase 2:
    warm requests are cache hits and do not reach the engine.

    Phase 2 (wall clock): 4 clients × 50 requests on the now-cached
    plan measure the full wire path — HTTP parse, cache hit, JSON
    response — as median/p95 latency and aggregate throughput.
    """
    import threading
    from concurrent.futures import ThreadPoolExecutor

    from repro.feedback import drifted_workload
    from repro.generator.generate import generate_optimizer
    from repro.options import ServerOptions
    from repro.server import OptimizerServer, ServerClient, ServerThread

    chain = "SELECT * FROM r, s, t WHERE r.k = s.k AND s.k = t.k"
    fanout, clients, repeats = 8, 4, 50

    class DelayedOptimizer:
        """Holds the cold flight open long enough to collect followers."""

        def __init__(self, inner):
            self._inner = inner

        def __getattr__(self, name):
            return getattr(self._inner, name)

        def optimize(self, *args, **kwargs):
            time.sleep(0.15)
            return self._inner.optimize(*args, **kwargs)

    scenario = drifted_workload(seed=7, growth=4)
    service = OptimizerService(
        DelayedOptimizer(
            generate_optimizer(relational_model(), scenario.catalog)
        ),
        options=ServiceOptions(verify_plans=True),
    )
    server = OptimizerServer(
        service,
        options=ServerOptions(max_concurrent=fanout, workers=fanout),
    )
    with ServerThread(server) as harness:
        barrier = threading.Barrier(fanout)

        def cold_request():
            with ServerClient(harness.address) as client:
                barrier.wait()
                return client.optimize(chain)

        with ThreadPoolExecutor(max_workers=fanout) as pool:
            for future in [pool.submit(cold_request) for _ in range(fanout)]:
                future.result()
        cold = service.stats.snapshot()

        def warm_requests():
            samples: List[float] = []
            with ServerClient(harness.address) as client:
                for _ in range(repeats):
                    started = time.perf_counter()
                    client.optimize(chain)
                    samples.append(time.perf_counter() - started)
            return samples

        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=clients) as pool:
            collected = [
                future.result()
                for future in [
                    pool.submit(warm_requests) for _ in range(clients)
                ]
            ]
        elapsed = time.perf_counter() - started
    times = [sample for samples in collected for sample in samples]
    return {
        "median_ms": _median_ms(times),
        "p95_ms": _p95_ms(times),
        "queries_per_second": len(times) / elapsed,
        "cold_misses": float(cold.misses),
        "cold_shared_waits": float(cold.shared_waits),
        "cold_insertions": float(cold.insertions),
    }


# ---------------------------------------------------------------------------
# Orchestration, comparison, reporting
# ---------------------------------------------------------------------------


def run_regress(
    config: Optional[RegressConfig] = None, progress: Progress = None
) -> Dict:
    """Run the whole suite; returns the report as a JSON-ready dict."""
    config = config or RegressConfig()

    def note(line: str) -> None:
        if progress is not None:
            progress(line)

    benches: Dict[str, Dict[str, float]] = {}
    for size in config.sizes:
        name = f"figure4_n{size}"
        benches[name] = _bench_figure4(config, size)
        note(f"{name}: {benches[name]['median_ms']:.1f} ms median")
    for name, runner in (
        ("memo_insert", _bench_memo_insert),
        ("memo_merge", _bench_memo_merge),
        ("binding_enum", _bench_binding_enum),
        ("feedback_loop", _bench_feedback_loop),
        ("batch_throughput", _bench_batch_throughput),
        ("mqo_sharing", _bench_mqo_sharing),
        ("promise_ordering", _bench_promise_ordering),
        ("verify_overhead", _bench_verify_overhead),
        ("kernel_speedup", _bench_kernel_speedup),
        ("server_throughput", _bench_server_throughput),
    ):
        benches[name] = runner(config)
        note(f"{name}: {benches[name]['median_ms']:.1f} ms median")
    return {
        "schema": 1,
        "environment": {
            "python": platform.python_version(),
            "cpus": len(os.sched_getaffinity(0)),
        },
        "config": {
            "sizes": list(config.sizes),
            "queries_per_size": config.queries_per_size,
            "seed": config.seed,
        },
        "benches": benches,
    }


# Parallel throughput measures core count, not code quality.
_NEVER_COMPARED = {"parallel_queries_per_second", "parallel_speedup"}
_COUNT_METRICS = {
    "mean_groups",
    "mean_expressions",
    "costings",
    "groups",
    "expressions",
    "canonical_hops",
    # feedback_loop: all deterministic (seeded data, exact counters).
    "drift_q_error",
    "refreshes",
    "stale_work",
    "fresh_work",
    "qerr_over_2",
    # mqo_sharing: exact for the fixed seed (cost model + greedy pass).
    "shared_groups",
    "sharing_candidates",
    "consumer_links",
    "savings_fraction",
    # promise_ordering: deterministic search counters; the two deltas
    # and the retry count must hold at exactly zero.
    "static_costings",
    "learned_costings",
    "rule_firing_delta",
    "plans_identical",
    "bound_seeds",
    "bound_seed_retries",
    "min_promise_pruned",
    "min_promise_parity_delta",
    # verify_overhead: every certified plan must keep verifying.
    "verified_ok",
    # kernel_speedup: kernelized runs must be observably identical to
    # interpreted ones — every plan equal, both deltas exactly zero.
    "costings_delta",
    # server_throughput: single-flight must collapse the cold fan-out
    # to exactly one engine run (8 misses, 7 shared waits, 1 insert).
    "cold_misses",
    "cold_shared_waits",
    "cold_insertions",
}


def compare(
    current: Dict, baseline: Dict, config: Optional[RegressConfig] = None
) -> List[str]:
    """Regressions of ``current`` against ``baseline`` (empty = pass)."""
    config = config or RegressConfig()
    failures: List[str] = []
    for bench, expected in baseline.get("benches", {}).items():
        actual = current.get("benches", {}).get(bench)
        if actual is None:
            failures.append(f"{bench}: bench missing from current results")
            continue
        for metric, base_value in expected.items():
            if metric in _NEVER_COMPARED:
                continue
            value = actual.get(metric)
            if value is None:
                failures.append(f"{bench}.{metric}: metric missing")
                continue
            label = f"{bench}.{metric}: {value:.3f} vs baseline {base_value:.3f}"
            if metric == "audit_violations":
                if value > base_value:
                    failures.append(f"{label} (invariant violations)")
            elif metric.endswith("_ms"):
                if value > base_value * (1.0 + config.time_tolerance):
                    failures.append(
                        f"{label} (beyond +{config.time_tolerance:.0%} band)"
                    )
            elif metric == "queries_per_second":
                if value < base_value / (1.0 + config.time_tolerance):
                    failures.append(
                        f"{label} (beyond +{config.time_tolerance:.0%} band)"
                    )
            elif metric == "verify_overhead":
                if value > config.verify_overhead_cap:
                    failures.append(
                        f"{label} (certified serving beyond the "
                        f"{config.verify_overhead_cap:.0%} overhead cap)"
                    )
            elif metric == "kernel_speedup":
                if value < config.kernel_speedup_floor:
                    failures.append(
                        f"{label} (specialized kernel below the "
                        f"{config.kernel_speedup_floor:.2f}x speedup floor)"
                    )
            elif metric.endswith("hit_rate"):
                if value < base_value - config.rate_tolerance:
                    failures.append(
                        f"{label} (dropped more than {config.rate_tolerance})"
                    )
            elif metric in _COUNT_METRICS:
                low = base_value * (1.0 - config.count_tolerance)
                high = base_value * (1.0 + config.count_tolerance)
                if not (low <= value <= high):
                    failures.append(
                        f"{label} (outside ±{config.count_tolerance:.0%}; "
                        "the search changed, not the machine)"
                    )
    return failures


def apply_inflation(results: Dict, factor: float) -> Dict:
    """Scale every wall-clock metric by ``factor`` (synthetic slowdown).

    Exists so the harness can be demonstrated to *fail*: a CI step runs
    ``regress --inflate 3`` and asserts a non-zero exit, proving the
    tolerance band is a band and not a rubber stamp.
    """
    inflated = json.loads(json.dumps(results))
    for metrics in inflated.get("benches", {}).values():
        for metric in list(metrics):
            if metric in _NEVER_COMPARED:
                continue
            if metric.endswith("_ms"):
                metrics[metric] *= factor
            elif metric == "queries_per_second":
                metrics[metric] /= factor
    return inflated


def render_report(results: Dict, failures: List[str]) -> str:
    """A human-readable summary of one run (plus its verdict)."""
    lines = ["benchmark-regression suite", ""]
    for bench, metrics in results["benches"].items():
        parts = [f"{metric}={value:.3f}" for metric, value in metrics.items()]
        lines.append(f"  {bench:18s} " + "  ".join(parts))
    lines.append("")
    if failures:
        lines.append(f"FAIL: {len(failures)} regression(s)")
        lines.extend(f"  - {failure}" for failure in failures)
    else:
        lines.append("PASS: within tolerance of baseline")
    return "\n".join(lines)
