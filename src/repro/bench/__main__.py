"""Command-line benchmark harness: ``python -m repro.bench <experiment>``.

Experiments (ids from DESIGN.md):

  figure4      the paper's Figure 4 (time + plan quality + memory)
  ablations    A1–A8 ablation tables
  validate     V1 cost-model-vs-executor validation
  regress      benchmark-regression suite vs BENCH_baseline.json
  all          everything above (except regress)

Options:
  --queries N    queries per complexity level (default 50, paper's value)
  --sizes A-B    relation-count range (default 2-8, paper's range)
  --seed N       workload seed (default 1993)
  --order-by P   fraction of queries with ORDER BY (default 0; 1.0 shows
                 the property-blindness quality gap)
  --selectivity LO-HI    per-relation selection selectivity range
                         (default 0.2-1.0; 0.5-1.0 keeps intermediates big)
  --key-fraction LO-HI   join-key distinct count as a fraction of rows
                         (default 0.25-1.0; 0.2-0.6 makes joins grow)
  --deadline S   bounded-latency mode: give every Volcano run a
                 ResourceBudget(deadline_seconds=S) and report how many
                 answers were degraded (anytime) per complexity level
  --quick        shorthand for --queries 5 --sizes 2-6
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.ablations import (
    run_bushy_ablation,
    run_shape_complexity,
    run_executor_validation,
    run_failure_ablation,
    run_glue_ablation,
    run_promise_ablation,
    run_pruning_ablation,
    run_setops_orders,
    run_systemr_comparison,
)
from repro.bench.figure4 import (
    Figure4Config,
    figure4_to_csv,
    render_figure4,
    run_figure4,
)
from repro.workloads import WorkloadOptions


def _parse_sizes(text: str):
    low, _, high = text.partition("-")
    return tuple(range(int(low), int(high or low) + 1))


def _run_regress_cli(arguments) -> int:
    import json
    from pathlib import Path

    from repro.bench.regress import (
        RegressConfig,
        apply_inflation,
        compare,
        render_report,
        run_regress,
    )

    config = RegressConfig()
    if arguments.time_tolerance is not None:
        from dataclasses import replace

        config = replace(config, time_tolerance=arguments.time_tolerance)
    results = run_regress(config, progress=lambda line: print(line, flush=True))
    if arguments.inflate is not None:
        results = apply_inflation(results, arguments.inflate)
        print(f"(times synthetically inflated {arguments.inflate}x)")
    Path(arguments.output).write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {arguments.output}")
    if arguments.write_baseline:
        Path(arguments.baseline).write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {arguments.baseline}")
        return 0
    baseline_path = Path(arguments.baseline)
    if not baseline_path.exists():
        print(f"no baseline at {arguments.baseline}; run with --write-baseline")
        return 1
    baseline = json.loads(baseline_path.read_text())
    failures = compare(results, baseline, config)
    print()
    print(render_report(results, failures))
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "experiment",
        choices=["figure4", "ablations", "validate", "regress", "all"],
    )
    parser.add_argument("--queries", type=int, default=50)
    parser.add_argument("--sizes", type=_parse_sizes, default=tuple(range(2, 9)))
    parser.add_argument("--seed", type=int, default=1993)
    parser.add_argument("--order-by", type=float, default=0.0)

    def _parse_range(value):
        low, _, high = value.partition("-")
        return (float(low), float(high or low))

    parser.add_argument("--selectivity", type=_parse_range, default=(0.2, 1.0))
    parser.add_argument("--key-fraction", type=_parse_range, default=(0.25, 1.0))
    parser.add_argument(
        "--csv", default=None, help="also write the figure4 rows to this CSV file"
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-query optimization deadline in seconds (figure4 only)",
    )
    parser.add_argument("--quick", action="store_true")
    regress_group = parser.add_argument_group("regress options")
    regress_group.add_argument(
        "--baseline",
        default="BENCH_baseline.json",
        help="committed baseline to compare against (regress only)",
    )
    regress_group.add_argument(
        "--output",
        default="BENCH_results.json",
        help="where to write this run's results (regress only)",
    )
    regress_group.add_argument(
        "--write-baseline",
        action="store_true",
        help="write this run's results to --baseline and exit green",
    )
    regress_group.add_argument(
        "--time-tolerance",
        type=float,
        default=None,
        help="wall-clock tolerance band as a fraction (default 1.5)",
    )
    regress_group.add_argument(
        "--inflate",
        type=float,
        default=None,
        help="synthetically multiply measured times (harness self-test)",
    )
    arguments = parser.parse_args(argv)
    if arguments.quick:
        arguments.queries = 5
        arguments.sizes = tuple(range(2, 7))

    if arguments.experiment == "regress":
        return _run_regress_cli(arguments)

    if arguments.experiment in ("figure4", "all"):
        config = Figure4Config(
            sizes=arguments.sizes,
            queries_per_size=arguments.queries,
            seed=arguments.seed,
            workload=WorkloadOptions(
                order_by_probability=arguments.order_by,
                selectivity_range=arguments.selectivity,
                key_fraction_range=arguments.key_fraction,
            ),
            deadline=arguments.deadline,
        )
        result = run_figure4(config, progress=lambda line: print(line, flush=True))
        print()
        print(render_figure4(result))
        print()
        if arguments.csv:
            from pathlib import Path

            Path(arguments.csv).write_text(figure4_to_csv(result))
            print(f"wrote {arguments.csv}")
    if arguments.experiment in ("ablations", "all"):
        sizes = tuple(size for size in arguments.sizes if size >= 3)[:3] or (3,)
        queries = min(arguments.queries, 10)
        for runner in (
            lambda: run_pruning_ablation(sizes, queries, arguments.seed),
            lambda: run_failure_ablation(sizes, queries, arguments.seed),
            lambda: run_glue_ablation(sizes, queries, arguments.seed),
            lambda: run_bushy_ablation(sizes, queries, arguments.seed),
            lambda: run_systemr_comparison(sizes, queries, arguments.seed),
            run_setops_orders,
            lambda: run_promise_ablation(sizes, queries, arguments.seed),
            lambda: run_shape_complexity(queries_per_size=min(queries, 5), seed=arguments.seed),
        ):
            print(runner().render())
            print()
    if arguments.experiment in ("validate", "all"):
        print(run_executor_validation().render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
