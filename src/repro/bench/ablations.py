"""Ablation experiments for the design decisions the paper credits.

Each function isolates one mechanism of Section 3 / Section 6 and
reports what it buys (experiment ids from DESIGN.md):

* A1  branch-and-bound pruning
* A2  failure memoization
* A3  goal-directed physical properties vs. optimize-then-glue
* A4  bushy vs. left-deep search spaces
* A5  System R bottom-up DP vs. Volcano top-down
* A6  multiple alternative input property vectors (set operations)
* A7  promise-guided move selection
* A8  join-graph shape vs. search complexity
* V1  cost-model validation against the executor
"""

from __future__ import annotations

import statistics
import time
from typing import Sequence

from repro.algebra.properties import ANY_PROPS, PhysProps, sorted_on
from repro.bench.reporting import Table, geometric_mean
from repro.model.context import OptimizerContext
from repro.model.spec import AlgorithmNode
from repro.models.relational import relational_model
from repro.models.setops import SetOpsModelOptions, intersect, setops_model
from repro.models.relational import get
from repro.search import SearchOptions, VolcanoOptimizer
from repro.systemr import SystemROptimizer, SystemROptions
from repro.workloads import QueryGenerator, WorkloadOptions

__all__ = [
    "run_shape_complexity",
    "run_pruning_ablation",
    "run_failure_ablation",
    "run_glue_ablation",
    "run_bushy_ablation",
    "run_systemr_comparison",
    "run_setops_orders",
    "run_promise_ablation",
    "run_executor_validation",
]

_DEFAULT_SIZES = (3, 5, 7)


def _ordered_workload() -> WorkloadOptions:
    """Queries that all request sorted output (property goals matter).

    Mild selections and low-distinct join keys keep intermediate results
    large, the regime where interesting orderings decide plan quality.
    """
    return WorkloadOptions(
        order_by_probability=1.0,
        selectivity_range=(0.5, 1.0),
        key_fraction_range=(0.2, 0.6),
    )


def _run_variants(sizes, queries_per_size, seed, workload, variants):
    """Optimize the same queries under several SearchOptions variants.

    Returns ``{variant: {size: (mean_time, geomean_cost, mean_costings)}}``.
    """
    generator = QueryGenerator(workload)
    spec = relational_model()
    results = {label: {} for label, _ in variants}
    for size in sizes:
        batch = generator.generate_batch(size, queries_per_size, seed=seed)
        for label, options in variants:
            times, costs, costings = [], [], []
            for query in batch:
                optimizer = VolcanoOptimizer(spec, query.catalog, options)
                started = time.perf_counter()
                result = optimizer.optimize(query.query, query.required)
                times.append(time.perf_counter() - started)
                costs.append(result.cost.total())
                costings.append(
                    result.stats.algorithm_costings + result.stats.enforcer_costings
                )
            results[label][size] = (
                statistics.mean(times),
                geometric_mean(costs),
                statistics.mean(costings),
            )
    return results


def run_shape_complexity(
    sizes: Sequence[int] = (4, 6, 8), queries_per_size: int = 5, seed: int = 7
) -> Table:
    """A8: join-graph shape vs. search complexity (Ono–Lohman, ref [13]).

    The paper: Volcano's optimization cost "mirrors exactly the increase
    in the number of equivalent logical algebra expressions [13]" — and
    that count depends on the join graph's shape.  Stars have
    exponentially more connected subsets than chains, so the same
    relation count costs much more to optimize.
    """
    from repro.search.extract import count_logical_expressions

    spec = relational_model()
    table = Table(
        "A8 — Join-graph shape vs. search complexity",
        [
            "relations",
            "chain ms",
            "star ms",
            "chain exprs",
            "star exprs",
            "star/chain",
        ],
    )
    for size in sizes:
        measurements = {}
        for shape in ("chain", "star"):
            generator = QueryGenerator(WorkloadOptions(shape=shape))
            times, counts = [], []
            for query in generator.generate_batch(size, queries_per_size, seed=seed):
                optimizer = VolcanoOptimizer(
                    spec, query.catalog, SearchOptions(check_consistency=False)
                )
                started = time.perf_counter()
                result = optimizer.optimize(query.query)
                times.append(time.perf_counter() - started)
                root = max(
                    result.memo.groups(),
                    key=lambda group: len(group.logical_props.tables),
                ).id
                counts.append(count_logical_expressions(result.memo, root))
            measurements[shape] = (
                statistics.mean(times),
                statistics.mean(counts),
            )
        chain_time, chain_count = measurements["chain"]
        star_time, star_count = measurements["star"]
        table.add_row(
            size,
            chain_time * 1000,
            star_time * 1000,
            chain_count,
            star_count,
            f"{star_count / chain_count:.2f}x",
        )
    table.add_note(
        "optimization effort follows the logical-space size, which the "
        "join graph's shape determines"
    )
    return table


def run_pruning_ablation(
    sizes: Sequence[int] = _DEFAULT_SIZES, queries_per_size: int = 10, seed: int = 7
) -> Table:
    """A1: branch-and-bound changes work, never plans."""
    variants = [
        ("pruned", SearchOptions(branch_and_bound=True, check_consistency=False)),
        ("unpruned", SearchOptions(branch_and_bound=False, check_consistency=False)),
    ]
    results = _run_variants(sizes, queries_per_size, seed, _ordered_workload(), variants)
    table = Table(
        "A1 — Branch-and-bound pruning",
        [
            "relations",
            "pruned ms",
            "unpruned ms",
            "pruned costings",
            "unpruned costings",
            "costings ratio",
            "cost equal",
        ],
    )
    for size in sizes:
        pruned_time, pruned_cost, pruned_costings = results["pruned"][size]
        unpruned_time, unpruned_cost, unpruned_costings = results["unpruned"][size]
        table.add_row(
            size,
            pruned_time * 1000,
            unpruned_time * 1000,
            pruned_costings,
            unpruned_costings,
            f"{unpruned_costings / max(1, pruned_costings):.2f}x",
            "yes" if abs(pruned_cost - unpruned_cost) < 1e-6 * unpruned_cost else "NO",
        )
    table.add_note("identical plan costs prove pruning is lossless (invariant 5)")
    table.add_note(
        "limits cut work inside each goal but make failure caching "
        "limit-sensitive: a goal failed at limit L is re-searched when a "
        "later consumer offers a higher limit, so total costings can go "
        "either way — see EXPERIMENTS.md"
    )
    return table


def run_failure_ablation(
    sizes: Sequence[int] = _DEFAULT_SIZES, queries_per_size: int = 10, seed: int = 7
) -> Table:
    """A2: memoizing failures saves repeated doomed subsearches."""
    variants = [
        ("cached", SearchOptions(cache_failures=True, check_consistency=False)),
        ("uncached", SearchOptions(cache_failures=False, check_consistency=False)),
    ]
    results = _run_variants(sizes, queries_per_size, seed, _ordered_workload(), variants)
    table = Table(
        "A2 — Failure memoization ('interesting facts' include failures)",
        ["relations", "cached ms", "uncached ms", "speedup", "cost equal"],
    )
    for size in sizes:
        cached_time, cached_cost, _ = results["cached"][size]
        uncached_time, uncached_cost, _ = results["uncached"][size]
        table.add_row(
            size,
            cached_time * 1000,
            uncached_time * 1000,
            f"{uncached_time / cached_time:.2f}x",
            "yes" if abs(cached_cost - uncached_cost) < 1e-6 * uncached_cost else "NO",
        )
    return table


def glue_optimize(spec, catalog, query, required: PhysProps, options=None):
    """A3 helper: the Starburst-style two-step — optimize ignoring the
    required properties, then add 'glue' enforcers on top afterwards."""
    optimizer = VolcanoOptimizer(spec, catalog, options or SearchOptions(check_consistency=False))
    result = optimizer.optimize(query, ANY_PROPS)
    plan, cost = result.plan, result.cost
    if plan.properties.covers(required):
        return plan, cost
    context = OptimizerContext(spec, catalog)
    output_props = context.logical_props(query)
    for enforcer in spec.enforcers.values():
        for application in enforcer.enforce(context, required, output_props):
            if not application.delivered.covers(required):
                continue
            node = AlgorithmNode(application.args, output_props, (output_props,))
            enforcer_cost = enforcer.cost(context, node)
            from repro.algebra.plans import PhysicalPlan

            plan = PhysicalPlan(
                enforcer.name,
                application.args,
                (plan,),
                properties=application.delivered,
                cost=cost + enforcer_cost,
                is_enforcer=True,
            )
            return plan, plan.cost
    raise RuntimeError(f"no glue enforcer delivers [{required}]")


def run_glue_ablation(
    sizes: Sequence[int] = _DEFAULT_SIZES, queries_per_size: int = 10, seed: int = 7
) -> Table:
    """A3: property-directed search vs. optimize-then-glue (Starburst)."""
    generator = QueryGenerator(_ordered_workload())
    spec = relational_model()
    table = Table(
        "A3 — Goal-directed properties vs. glue-afterwards",
        ["relations", "directed cost", "glued cost", "glue penalty"],
    )
    for size in sizes:
        directed_costs, glued_costs, ratios = [], [], []
        for query in generator.generate_batch(size, queries_per_size, seed=seed):
            optimizer = VolcanoOptimizer(
                spec, query.catalog, SearchOptions(check_consistency=False)
            )
            directed = optimizer.optimize(query.query, query.required)
            _, glued_cost = glue_optimize(
                spec, query.catalog, query.query, query.required
            )
            directed_costs.append(directed.cost.total())
            glued_costs.append(glued_cost.total())
            ratios.append(glued_cost.total() / directed.cost.total())
        table.add_row(
            size,
            geometric_mean(directed_costs),
            geometric_mean(glued_costs),
            f"{statistics.mean(ratios):.2f}x",
        )
    table.add_note(
        "directed search places enforcers inside the plan where they are "
        "cheap; glue pays full price on the final result"
    )
    return table


def run_bushy_ablation(
    sizes: Sequence[int] = _DEFAULT_SIZES, queries_per_size: int = 10, seed: int = 7
) -> Table:
    """A4: restricting the space to left-deep trees (System R's choice)."""
    generator = QueryGenerator(WorkloadOptions())
    spec = relational_model()
    table = Table(
        "A4 — Bushy vs. left-deep search space",
        ["relations", "bushy cost", "left-deep cost", "left-deep penalty", "bushy joins costed", "left-deep joins costed"],
    )
    for size in sizes:
        bushy_costs, deep_costs, bushy_work, deep_work = [], [], [], []
        for query in generator.generate_batch(size, queries_per_size, seed=seed):
            bushy = SystemROptimizer(
                spec, query.catalog, SystemROptions(bushy=True)
            ).optimize(query.query)
            deep = SystemROptimizer(
                spec, query.catalog, SystemROptions(bushy=False)
            ).optimize(query.query)
            bushy_costs.append(bushy.cost.total())
            deep_costs.append(deep.cost.total())
            bushy_work.append(bushy.stats.joins_costed)
            deep_work.append(deep.stats.joins_costed)
        table.add_row(
            size,
            geometric_mean(bushy_costs),
            geometric_mean(deep_costs),
            f"{geometric_mean(deep_costs) / geometric_mean(bushy_costs):.3f}x",
            statistics.mean(bushy_work),
            statistics.mean(deep_work),
        )
    return table


def run_systemr_comparison(
    sizes: Sequence[int] = _DEFAULT_SIZES, queries_per_size: int = 10, seed: int = 7
) -> Table:
    """A5: top-down directed DP vs. bottom-up DP, same cost model."""
    generator = QueryGenerator(WorkloadOptions())
    spec = relational_model()
    table = Table(
        "A5 — Volcano (top-down) vs. System R (bottom-up), bushy spaces",
        ["relations", "volcano ms", "system r ms", "costs agree"],
    )
    for size in sizes:
        volcano_times, systemr_times, agree = [], [], True
        for query in generator.generate_batch(size, queries_per_size, seed=seed):
            volcano = VolcanoOptimizer(
                spec, query.catalog, SearchOptions(check_consistency=False)
            )
            started = time.perf_counter()
            volcano_result = volcano.optimize(query.query)
            volcano_times.append(time.perf_counter() - started)
            systemr = SystemROptimizer(
                spec, query.catalog, SystemROptions(bushy=True)
            )
            started = time.perf_counter()
            systemr_result = systemr.optimize(query.query)
            systemr_times.append(time.perf_counter() - started)
            if (
                abs(volcano_result.cost.total() - systemr_result.cost.total())
                > 1e-6 * systemr_result.cost.total()
            ):
                agree = False
        table.add_row(
            size,
            statistics.mean(volcano_times) * 1000,
            statistics.mean(systemr_times) * 1000,
            "yes" if agree else "NO",
        )
    table.add_note("agreement is DESIGN.md invariant 6")
    return table


def run_setops_orders(row_counts: Sequence[int] = (2400, 4800, 7200)) -> Table:
    """A6: alternative input sort orders for sort-based intersection.

    The goal requires the result sorted on the *second* column.  With
    ``max_order_permutations=1`` merge-intersection offers only the
    canonical (first, second) order, so an extra sort of the result is
    needed; with alternatives enabled the (second, first) order is
    offered and chosen directly — the paper's Section 3 feature.
    """
    from repro.catalog import Catalog, ColumnStatistics, Schema, TableStatistics

    table = Table(
        "A6 — Alternative input property vectors for intersection",
        ["rows", "canonical-only cost", "alternatives cost", "saving"],
    )
    for rows in row_counts:
        catalog = Catalog()
        for name in ("r", "s"):
            catalog.add_table(
                name,
                Schema.of(f"{name}.k", f"{name}.v"),
                TableStatistics(
                    rows,
                    100,
                    columns={
                        f"{name}.k": ColumnStatistics(rows, 0, rows - 1),
                        f"{name}.v": ColumnStatistics(rows, 0, rows - 1),
                    },
                ),
            )
        query = intersect(get("r"), get("s"))
        required = sorted_on("r.v")
        costs = {}
        for label, permutations in (("canonical", 1), ("alternatives", 3)):
            spec = setops_model(
                SetOpsModelOptions(max_order_permutations=permutations)
            )
            # Isolate the merge implementation: drop the hash fallback.
            spec.implementations = [
                rule
                for rule in spec.implementations
                if rule.name != "intersect_to_hash"
            ]
            optimizer = VolcanoOptimizer(
                spec, catalog, SearchOptions(check_consistency=False)
            )
            costs[label] = optimizer.optimize(query, required).cost.total()
        table.add_row(
            rows,
            costs["canonical"],
            costs["alternatives"],
            f"{costs['canonical'] / costs['alternatives']:.2f}x",
        )
    table.add_note(
        "'no earlier query optimizer has provided this feature' (Section 6)"
    )
    return table


def run_promise_ablation(
    sizes: Sequence[int] = _DEFAULT_SIZES, queries_per_size: int = 10, seed: int = 7
) -> Table:
    """A7: a promise threshold that skips associativity (heuristic mode).

    A third variant runs exhaustive search with a
    :class:`repro.search.LearnedPromiseModel` active: the model may
    reorder move pursuit, so its cost column must match the exhaustive
    one exactly — the order-independent winner rule, exercised on every
    CI run alongside the ``min_promise`` point.
    """
    from repro.search import LearnedPromiseModel

    variants = [
        ("exhaustive", SearchOptions(check_consistency=False)),
        ("promise≥0.9", SearchOptions(min_promise=0.9, check_consistency=False)),
        (
            "learned",
            SearchOptions(
                check_consistency=False,
                promise_model=LearnedPromiseModel(boost=0.75),
            ),
        ),
    ]
    results = _run_variants(sizes, queries_per_size, seed, WorkloadOptions(), variants)
    table = Table(
        "A7 — Promise-guided move selection (skip associativity)",
        [
            "relations",
            "exhaustive ms",
            "heuristic ms",
            "speedup",
            "exhaustive cost",
            "heuristic cost",
            "quality loss",
            "learned cost",
        ],
    )
    for size in sizes:
        full_time, full_cost, _ = results["exhaustive"][size]
        fast_time, fast_cost, _ = results["promise≥0.9"][size]
        _, learned_cost, _ = results["learned"][size]
        table.add_row(
            size,
            full_time * 1000,
            fast_time * 1000,
            f"{full_time / fast_time:.2f}x",
            full_cost,
            fast_cost,
            f"{fast_cost / full_cost:.3f}x",
            learned_cost,
        )
        if learned_cost != full_cost:
            raise AssertionError(
                "a promise model must never change plan cost under "
                f"exhaustive search ({learned_cost} vs {full_cost})"
            )
    table.add_note(
        "the heuristic explores commutations only; quality loss is the "
        "price of skipping the associativity rule; the learned column "
        "must equal the exhaustive one (models only reorder)"
    )
    return table


def run_executor_validation(
    n_relations: int = 3, queries: int = 5, seed: int = 21
) -> Table:
    """V1: estimated vs. actual — cardinalities and scan page counts."""
    from repro.executor import ExecutionStats, execute_plan, generate_table, TableSpec
    from repro.feedback import observed_report

    generator = QueryGenerator(
        WorkloadOptions(min_rows=600, max_rows=1800, selectivity_range=(0.3, 0.8))
    )
    spec = relational_model()
    table = Table(
        "V1 — Cost model vs. executor",
        [
            "query",
            "est rows",
            "actual rows",
            "rows ratio",
            "max q-error",
            "est scan io",
            "actual scan io",
        ],
    )
    for index in range(queries):
        query = generator.generate(n_relations, seed + index)
        # Materialize actual rows matching the synthetic statistics.
        for name in query.table_names:
            entry = query.catalog.table(name)
            stats = entry.statistics
            rows = _rows_for(name, stats, seed + index)
            entry.rows = rows
        optimizer = VolcanoOptimizer(
            spec, query.catalog, SearchOptions(check_consistency=False)
        )
        result = optimizer.optimize(query.query)
        context = OptimizerContext(spec, query.catalog)
        estimated_rows = context.logical_props(query.query).cardinality
        execution_stats = ExecutionStats()
        rows = execute_plan(
            result.plan, query.catalog, execution_stats, instrument=True
        )
        report = observed_report(
            result.plan, execution_stats, query.catalog, spec
        )
        estimated_io = sum(
            query.catalog.table(name).statistics.pages(query.catalog.page_size)
            for name in query.table_names
        )
        table.add_row(
            f"q{index}",
            estimated_rows,
            len(rows),
            f"{(estimated_rows / len(rows)):.2f}" if rows else "n/a",
            f"{report.max_q_error:.2f}",
            estimated_io,
            execution_stats.pages_read,
        )
    table.add_note("scan I/O may exceed the estimate when plans re-scan or sort")
    return table


def _rows_for(name, stats, seed):
    import random

    rng = random.Random(f"rows:{seed}:{name}")
    rows = []
    key_a = stats.column(f"{name}.a")
    key_b = stats.column(f"{name}.b")
    value = stats.column(f"{name}.v")
    pad = "x" * max(1, stats.row_width - 12)
    for _ in range(int(stats.row_count)):
        rows.append(
            {
                f"{name}.a": rng.randrange(int(key_a.distinct_values)),
                f"{name}.b": rng.randrange(int(key_b.distinct_values)),
                f"{name}.v": rng.randrange(1000),
                f"{name}.pad": pad,
            }
        )
    return rows
