"""Static analysis of a :class:`~repro.model.spec.ModelSpecification`.

``lint_spec`` runs every check and returns a
:class:`~repro.lint.diagnostics.LintReport` without ever starting a
search.  The checks fall into six families (V0xx–V5xx); see
:mod:`repro.lint.diagnostics` for the code registry.

Rules and the cost/enforcer ADTs are opaque callables, so several checks
*probe* them: rewrite functions are invoked on synthetic bindings whose
leaves are memo-group references resolving to a generic probe relation,
cost functions on values built from the model's ``zero_cost`` type, and
enforcers on synthetic property vectors.  Probing is best-effort — a
callable that genuinely needs real catalog data fails its probe and gets
an *info* diagnostic (``V009``/``V305``/``V403``) instead of a false
error, because the corresponding contract is still enforced at run time
by the engine and by :class:`repro.lint.invariants.MemoAuditor`.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.algebra.expressions import LogicalExpression, group_leaf, is_group_leaf
from repro.algebra.predicates import TRUE
from repro.algebra.properties import (
    LogicalProperties,
    Partitioning,
    PhysProps,
)
from repro.catalog.catalog import Catalog
from repro.catalog.schema import Schema
from repro.catalog.statistics import ColumnStatistics
from repro.model.cost import INFINITE_COST, Cost
from repro.model.context import OptimizerContext
from repro.model.patterns import AnyPattern, OpPattern, Pattern
from repro.model.rules import TransformationRule
from repro.model.spec import VARIADIC, ModelSpecification
from repro.lint.diagnostics import LintReport
from repro.lint.rulegraph import RuleEdge, find_unguarded_cycles

__all__ = ["lint_spec", "probe_context"]


# ---------------------------------------------------------------------------
# Probe fixtures
# ---------------------------------------------------------------------------

# Synthetic relation every probed group leaf resolves to.  Generic enough
# for schema-inspecting condition code (three columns, statistics for
# selectivity estimation) without touching any catalog.
_PROBE_SCHEMA = Schema.of("c1", "c2", "c3")
_PROBE_CARDINALITY = 1000.0


def _probe_logical_props() -> LogicalProperties:
    return LogicalProperties(
        schema=_PROBE_SCHEMA,
        cardinality=_PROBE_CARDINALITY,
        column_stats={
            name: ColumnStatistics(100.0) for name in ("c1", "c2", "c3")
        },
        tables=frozenset({"probe"}),
    )


def probe_context(spec: ModelSpecification) -> OptimizerContext:
    """An optimizer context over an empty catalog whose group leaves all
    resolve to the generic probe relation."""
    context = OptimizerContext(spec, Catalog())
    context.group_props_resolver = lambda group_id: _probe_logical_props()
    return context


# Candidate argument tuples tried for every ``args_as`` binding, in
# order.  Most bundled rules carry a predicate (``(TRUE,)``), a pair of
# strings (materialize), or an empty/flag tuple.
_ARGS_CANDIDATES: Tuple[Tuple, ...] = (
    (TRUE,),
    ("probe_attr", "probe"),
    (),
    ((), ()),
    (True,),
    (False,),
)
_MAX_PROBE_COMBINATIONS = 64


def _pattern_binding_slots(pattern: Pattern) -> Tuple[List[str], List[str]]:
    """(AnyPattern leaf names, args_as names) in left-to-right order."""
    leaves: List[str] = []
    args_names: List[str] = []

    def visit(node: Pattern) -> None:
        if isinstance(node, AnyPattern):
            leaves.append(node.name)
            return
        assert isinstance(node, OpPattern)
        if node.args_as is not None:
            args_names.append(node.args_as)
        for sub in node.inputs:
            visit(sub)

    visit(pattern)
    return leaves, args_names


def _pattern_operator_nodes(pattern: Pattern) -> int:
    if isinstance(pattern, AnyPattern):
        return 0
    return 1 + sum(_pattern_operator_nodes(sub) for sub in pattern.inputs)


def _walk_operators(expression: LogicalExpression):
    """Yield every non-leaf node of an expression tree."""
    if is_group_leaf(expression):
        return
    yield expression
    for node in expression.inputs:
        yield from _walk_operators(node)


def _collect_group_leaves(expression: LogicalExpression, into: Set[int]) -> None:
    if is_group_leaf(expression):
        into.add(expression.args[0])
        return
    for node in expression.inputs:
        _collect_group_leaves(node, into)


class _RuleProbe:
    """Outcome of probing one transformation rule's rewrite."""

    def __init__(self, rule: TransformationRule):
        self.rule = rule
        self.outputs: List[LogicalExpression] = []
        self.leaf_names: List[str] = []
        self.leaf_ids: Dict[int, str] = {}
        self.succeeded = False


def _probe_rule(
    rule: TransformationRule, context: OptimizerContext
) -> _RuleProbe:
    """Invoke the rewrite on synthetic bindings, first success wins."""
    probe = _RuleProbe(rule)
    leaves, args_names = _pattern_binding_slots(rule.pattern)
    probe.leaf_names = leaves
    base = {}
    for index, name in enumerate(leaves):
        # Distinct ids let us see which bound inputs survive the rewrite.
        group_id = 1000 + index
        base[name] = group_leaf(group_id)
        probe.leaf_ids[group_id] = name

    combinations = itertools.product(
        *(range(len(_ARGS_CANDIDATES)) for _ in args_names)
    )
    for combo in itertools.islice(combinations, _MAX_PROBE_COMBINATIONS):
        binding = dict(base)
        for name, candidate in zip(args_names, combo):
            binding[name] = _ARGS_CANDIDATES[candidate]
        try:
            if not rule.applies(binding, context):
                continue
            result = rule.rewrite(binding, context)
        except Exception:
            continue
        if result is None:
            continue
        outputs = result if isinstance(result, list) else [result]
        if not all(isinstance(node, LogicalExpression) for node in outputs):
            continue
        probe.outputs = outputs
        probe.succeeded = True
        break
    return probe


# ---------------------------------------------------------------------------
# V0xx: well-formedness
# ---------------------------------------------------------------------------


def _check_spec_parts(spec: ModelSpecification, report: LintReport) -> None:
    if not spec.name:
        report.add("V005", "spec", "the specification has no name")
    if not spec.operators:
        report.add("V005", "spec", "no logical operators are declared")
    if not spec.algorithms:
        report.add("V005", "spec", "no algorithms are declared")
    if not callable(spec.zero_cost):
        report.add("V005", "spec", "zero_cost is not callable")
    if not callable(spec.props_cover):
        report.add("V005", "spec", "props_cover is not callable")


def _check_registries(spec: ModelSpecification, report: LintReport) -> None:
    for kind, registry in (
        ("operator", spec.operators),
        ("algorithm", spec.algorithms),
        ("enforcer", spec.enforcers),
    ):
        for key, definition in registry.items():
            if definition.name != key:
                report.add(
                    "V001",
                    f"{kind} {key!r}",
                    f"registered under {key!r} but named {definition.name!r}",
                )
    shared = set(spec.algorithms) & set(spec.enforcers)
    for name in sorted(shared):
        report.add(
            "V001",
            f"algorithm {name!r}",
            "the name is used by both an algorithm and an enforcer",
        )


def _check_pattern(
    pattern: Pattern,
    rule_name: str,
    kind: str,
    spec: ModelSpecification,
    report: LintReport,
) -> None:
    if isinstance(pattern, AnyPattern):
        return
    assert isinstance(pattern, OpPattern)
    subject = f"{kind} {rule_name!r}"
    operator = spec.operators.get(pattern.operator)
    if operator is None:
        report.add(
            "V002",
            subject,
            f"pattern references undeclared operator {pattern.operator!r}",
        )
    elif operator.arity is not VARIADIC and len(pattern.inputs) != operator.arity:
        report.add(
            "V003",
            subject,
            f"pattern gives {pattern.operator!r} {len(pattern.inputs)} "
            f"input(s) but its declared arity is {operator.arity}",
        )
    for sub in pattern.inputs:
        _check_pattern(sub, rule_name, kind, spec, report)


def _check_rules_wellformed(spec: ModelSpecification, report: LintReport) -> None:
    for rule in spec.transformations:
        _check_pattern(rule.pattern, rule.name, "transformation", spec, report)
        _check_promise(rule, "transformation", report)
    for rule in spec.implementations:
        _check_pattern(rule.pattern, rule.name, "implementation", spec, report)
        _check_promise(rule, "implementation", report)
        if rule.algorithm not in spec.algorithms:
            report.add(
                "V004",
                f"implementation {rule.name!r}",
                f"targets undeclared algorithm {rule.algorithm!r}",
            )


def _check_promise(rule, kind: str, report: LintReport) -> None:
    """Promise must be a finite number: it orders move pursuit, feeds
    ``min_promise`` pruning, and is scaled by promise models — a NaN or
    infinity silently corrupts all three."""
    promise = rule.promise
    if (
        isinstance(promise, bool)
        or not isinstance(promise, (int, float))
        or not math.isfinite(promise)
    ):
        report.add(
            "V010",
            f"{kind} {rule.name!r}",
            f"promise is {promise!r}; expected a finite number",
        )


def _check_rewrite_output(
    probe: _RuleProbe, spec: ModelSpecification, report: LintReport
) -> None:
    subject = f"transformation {probe.rule.name!r}"
    surviving: Set[int] = set()
    for output in probe.outputs:
        _collect_group_leaves(output, surviving)
        for node in _walk_operators(output):
            operator = spec.operators.get(node.operator)
            if operator is None:
                report.add(
                    "V007",
                    subject,
                    f"rewrite produced undeclared operator {node.operator!r}",
                )
            elif (
                operator.arity is not VARIADIC
                and len(node.inputs) != operator.arity
            ):
                report.add(
                    "V008",
                    subject,
                    f"rewrite built {node.operator!r} with {len(node.inputs)} "
                    f"input(s) but its declared arity is {operator.arity}",
                )
    for group_id, name in probe.leaf_ids.items():
        if group_id not in surviving:
            report.add(
                "V006",
                subject,
                f"rewrite output drops bound input ?{name}; rewrites should "
                "be equivalence-preserving over all bound inputs",
            )


# ---------------------------------------------------------------------------
# V1xx: coverage / closure
# ---------------------------------------------------------------------------


def _check_coverage(
    spec: ModelSpecification,
    probes: Sequence[_RuleProbe],
    report: LintReport,
) -> None:
    implementable = {rule.top_operator for rule in spec.implementations}
    # An operator is also implementable when some transformation rewrites
    # trees rooted in it into trees rooted in an implementable operator.
    # Iterate to a fixpoint over the probed rewrites.
    changed = True
    while changed:
        changed = False
        for probe in probes:
            top = probe.rule.top_operator
            if top in implementable or not probe.succeeded:
                continue
            roots = [out for out in probe.outputs if not is_group_leaf(out)]
            if roots and all(out.operator in implementable for out in roots):
                implementable.add(top)
                changed = True
    for name in sorted(spec.operators):
        if name not in implementable:
            report.add(
                "V101",
                f"operator {name!r}",
                "no implementation rule applies to it and no transformation "
                "rewrites it into an implementable operator",
            )

    targeted = {rule.algorithm for rule in spec.implementations}
    for name in sorted(spec.algorithms):
        if spec.algorithms[name].utility:
            # Planted by out-of-search passes (multi-query sharing), not
            # by implementation rules; never dead by construction.
            continue
        if name not in targeted:
            report.add(
                "V103",
                f"algorithm {name!r}",
                "no implementation rule ever produces it",
            )


def _check_enforcer_completeness(
    spec: ModelSpecification, report: LintReport
) -> None:
    producible: Set[str] = set()
    for algorithm in spec.algorithms.values():
        producible |= algorithm.delivers
    for enforcer in spec.enforcers.values():
        producible |= enforcer.provides
    for name in sorted(spec.algorithms):
        missing = spec.algorithms[name].requires - producible
        for component in sorted(missing):
            report.add(
                "V104",
                f"algorithm {name!r}",
                f"may require property component {component!r}, which no "
                "algorithm delivers and no enforcer provides",
            )


# ---------------------------------------------------------------------------
# V2xx: termination heuristics
# ---------------------------------------------------------------------------


def _check_termination(
    spec: ModelSpecification,
    probes: Sequence[_RuleProbe],
    report: LintReport,
) -> None:
    edges: List[RuleEdge] = []
    for probe in probes:
        if probe.rule.condition is not None or not probe.succeeded:
            continue
        targets: Set[str] = set()
        nodes = 0
        for output in probe.outputs:
            for node in _walk_operators(output):
                targets.add(node.operator)
                nodes += 1
        pattern_nodes = _pattern_operator_nodes(probe.rule.pattern)
        edges.append(
            RuleEdge(
                rule=probe.rule.name,
                source=probe.rule.top_operator,
                targets=tuple(sorted(targets)),
                grows=nodes > pattern_nodes,
            )
        )
    for cycle in find_unguarded_cycles(edges):
        if cycle.grows:
            report.add(
                "V201",
                "transformations",
                f"unguarded growing rewrite cycle: {cycle.describe()}; the "
                "expression space is unbounded and the search may not "
                "terminate",
            )
        else:
            report.add(
                "V202",
                "transformations",
                f"unguarded rewrite cycle: {cycle.describe()}; termination "
                "relies on the memo's duplicate detection",
            )


# ---------------------------------------------------------------------------
# V3xx: cost-model sanity
# ---------------------------------------------------------------------------


def _cost_samples(zero: Cost) -> Optional[List[Cost]]:
    samples = []
    for value in (0.0, 1.0, 2.5, 10.0):
        try:
            sample = type(zero)(value)
        except Exception:
            return None
        if not isinstance(sample, Cost):
            return None
        samples.append(sample)
    return samples


def _check_cost_model(spec: ModelSpecification, report: LintReport) -> None:
    try:
        zero = spec.zero_cost()
    except Exception as error:
        report.add("V301", "zero_cost", f"zero_cost() raised {error!r}")
        return
    if not isinstance(zero, Cost):
        report.add(
            "V301", "zero_cost", f"zero_cost() returned {type(zero).__name__}, "
            "not a Cost"
        )
        return
    try:
        neutral = zero + zero == zero and zero.total() == 0
    except Exception as error:
        report.add("V301", "zero_cost", f"probing zero cost raised {error!r}")
        return
    if not neutral:
        report.add(
            "V301",
            "zero_cost",
            "zero_cost() is not neutral: z + z != z or z.total() != 0",
        )

    samples = _cost_samples(zero)
    if samples is None:
        report.add(
            "V305",
            f"cost type {type(zero).__name__!r}",
            "not constructible from a single float; algebraic probes skipped",
        )
        return

    tolerance = 1e-9

    def close(left: float, right: float) -> bool:
        return abs(left - right) <= tolerance * max(1.0, abs(left), abs(right))

    subject = f"cost type {type(zero).__name__!r}"
    try:
        for a, b in itertools.product(samples, repeat=2):
            total = (a + b).total()
            if not close(total, a.total() + b.total()):
                report.add(
                    "V303",
                    subject,
                    f"(a + b).total() = {total} but a.total() + b.total() = "
                    f"{a.total() + b.total()}",
                )
                break
    except Exception as error:
        report.add("V303", subject, f"cost addition raised {error!r}")
    try:
        for a, b in itertools.product(samples, repeat=2):
            recovered = (a + b) - b
            if not close(recovered.total(), a.total()):
                report.add(
                    "V304",
                    subject,
                    f"((a + b) - b).total() = {recovered.total()} but "
                    f"a.total() = {a.total()}",
                )
                break
    except Exception as error:
        report.add("V304", subject, f"cost subtraction raised {error!r}")

    ordered = samples + [INFINITE_COST]
    try:
        for a, b in itertools.product(ordered, repeat=2):
            trichotomy = sum((a < b, b < a, a == b))
            if trichotomy != 1:
                report.add(
                    "V302",
                    subject,
                    f"comparison of {a!r} and {b!r} is not trichotomous",
                )
                return
        for a, b, c in itertools.product(ordered, repeat=3):
            if a <= b and b <= c and not a <= c:
                report.add(
                    "V302",
                    subject,
                    f"comparison is not transitive over {a!r}, {b!r}, {c!r}",
                )
                return
        if not samples[0] < INFINITE_COST:
            report.add(
                "V302", subject, "finite costs do not compare below INFINITE_COST"
            )
    except Exception as error:
        report.add("V302", subject, f"cost comparison raised {error!r}")


# ---------------------------------------------------------------------------
# V4xx: enforcer contracts
# ---------------------------------------------------------------------------


def _enforcer_probe_vectors(enforcer) -> List[PhysProps]:
    vectors = [
        PhysProps(sort_order=("c1",)),
        PhysProps(sort_order=("c1", "c2")),
        PhysProps(partitioning=Partitioning("hash", ("c1",), 2)),
    ]
    for component in sorted(enforcer.provides):
        if component.startswith("flag:"):
            flag_name = component[len("flag:"):]
            vectors.append(
                PhysProps(flags=frozenset({(flag_name, "probe")}))
            )
            vectors.append(
                PhysProps(flags=frozenset({(flag_name, True)}))
            )
    return vectors


def _check_enforcers(
    spec: ModelSpecification,
    context: OptimizerContext,
    report: LintReport,
) -> None:
    output_props = _probe_logical_props()
    for name in sorted(spec.enforcers):
        enforcer = spec.enforcers[name]
        subject = f"enforcer {name!r}"
        probed = False
        for required in _enforcer_probe_vectors(enforcer):
            try:
                applications = list(
                    enforcer.enforce(context, required, output_props) or ()
                )
            except Exception:
                continue
            probed = True
            for application in applications:
                try:
                    delivered_ok = spec.props_cover(
                        application.delivered, required
                    )
                except Exception:
                    delivered_ok = False
                if not delivered_ok:
                    report.add(
                        "V401",
                        subject,
                        f"asked to enforce [{required}] it delivers only "
                        f"[{application.delivered}]",
                    )
                if application.relaxed == required:
                    report.add(
                        "V402",
                        subject,
                        f"asked to enforce [{required}] it does not relax "
                        "the goal; optimizing its input would recurse forever",
                    )
        if not probed:
            report.add(
                "V403",
                subject,
                "enforce() raised on every synthetic property vector; "
                "contract checked at run time only",
            )


# ---------------------------------------------------------------------------
# V5xx: utility algorithms
# ---------------------------------------------------------------------------


def _check_utility_algorithms(
    spec: ModelSpecification, report: LintReport
) -> None:
    """Utility algorithms live outside the search; check both borders.

    V501: an implementation rule targeting a utility algorithm lets the
    cost-based search build a node that an out-of-search pass
    (multi-query sharing) is supposed to own.  V502: a utility
    algorithm with no feedback-mirror registration silently yields
    unattributed cardinalities when its plans are executed
    instrumented; an explicit ``register_mirror(name, None)`` records
    the decision and satisfies the check.
    """
    from repro.feedback.estimates import has_mirror

    utilities = {
        name
        for name in spec.algorithms
        if spec.algorithms[name].utility
    }
    if not utilities:
        return
    for rule in spec.implementations:
        if rule.algorithm in utilities:
            report.add(
                "V501",
                f"implementation {rule.name!r}",
                f"targets utility algorithm {rule.algorithm!r}; utility "
                "algorithms are planted by out-of-search passes, not by "
                "the cost-based search",
            )
    for name in sorted(utilities):
        if not has_mirror(name):
            report.add(
                "V502",
                f"algorithm {name!r}",
                "no feedback mirror is registered; register one with "
                "repro.feedback.register_mirror (None for deliberately "
                "opaque nodes)",
            )


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def lint_spec(spec: ModelSpecification) -> LintReport:
    """Run every static check against ``spec``."""
    report = LintReport(spec_name=spec.name or "<unnamed>")
    _check_spec_parts(spec, report)
    _check_registries(spec, report)
    _check_rules_wellformed(spec, report)

    context = probe_context(spec)
    probes = [_probe_rule(rule, context) for rule in spec.transformations]
    for probe in probes:
        if probe.succeeded:
            _check_rewrite_output(probe, spec, report)
        else:
            report.add(
                "V009",
                f"transformation {probe.rule.name!r}",
                "rewrite/condition could not be probed with synthetic "
                "bindings; dynamic checks still apply",
            )

    _check_coverage(spec, probes, report)
    _check_enforcer_completeness(spec, report)
    _check_termination(spec, probes, report)
    _check_cost_model(spec, report)
    _check_enforcers(spec, probe_context(spec), report)
    _check_utility_algorithms(spec, report)
    return report
