"""Static analysis and runtime auditing for optimizer model specifications.

The optimizer generator's input — the paper's ten-item model
specification — is executable data: rules carry arbitrary condition and
rewrite code, the cost type is an abstract data type, and enforcers are
free functions.  Mistakes in any of them surface as silently wrong plans
or non-terminating searches, usually far from the defective definition.
This package front-loads that debugging:

:func:`~repro.lint.analyzer.lint_spec`
    Statically checks a :class:`~repro.model.spec.ModelSpecification` —
    well-formedness, implementation coverage, enforcer completeness,
    termination heuristics, cost-ADT algebra — and returns a
    :class:`~repro.lint.diagnostics.LintReport` of coded diagnostics.
:class:`~repro.lint.invariants.MemoAuditor`
    Attaches to any memo-based engine and verifies, after each search,
    that the solved memo satisfies the Volcano invariants (winner
    optimality and goal satisfaction, acyclic merges, monotonic costs,
    honest failure records).

``python -m repro.lint --all`` lints every bundled model; see
:mod:`repro.lint.cli`.
"""

from repro.lint.analyzer import lint_spec, probe_context
from repro.lint.diagnostics import (
    CODE_REGISTRY,
    CodeInfo,
    Diagnostic,
    LintReport,
    Severity,
)
from repro.lint.invariants import MemoAuditor

__all__ = [
    "lint_spec",
    "probe_context",
    "CODE_REGISTRY",
    "CodeInfo",
    "Diagnostic",
    "LintReport",
    "Severity",
    "MemoAuditor",
]
