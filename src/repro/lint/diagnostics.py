"""Diagnostic vocabulary for the model-specification linter.

Every check the linter performs is identified by a stable code (``V001``,
``V101``, ...).  Codes are grouped by the hundreds digit:

* ``V0xx`` — well-formedness of the specification itself.
* ``V1xx`` — coverage / closure (can every logical operator be costed?).
* ``V2xx`` — termination heuristics over the transformation rule set.
* ``V3xx`` — cost-model sanity (algebraic laws of the Cost ADT).
* ``V4xx`` — enforcer contracts (deliver what was asked, relax the goal).

Runtime memo-invariant violations detected by
:class:`repro.lint.invariants.MemoAuditor` use ``M0xx`` codes and the
same :class:`Diagnostic` shape, so one report type serves both the
static and the dynamic halves of the tool.

Plan-certificate violations detected by the independent verifier
(:func:`repro.verify.verify_plan`) use ``P0xx``–``P4xx`` codes:

* ``P0xx`` — certificate well-formedness (shape, claim/plan alignment).
* ``P1xx`` — derivation legality (every step a lawful rule application).
* ``P2xx`` — physical properties (derivations deliver the goal,
  enforcer contracts hold).
* ``P3xx`` — cost reproduction (claimed costs recompute exactly).
* ``P4xx`` — logical equivalence (the frontier provably derives from
  the input expression; sharing rewrites resolve their intermediates).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so ``max()`` picks the worst."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name.lower()


@dataclass(frozen=True)
class CodeInfo:
    """Registry entry: what a code means and how to fix it."""

    code: str
    severity: Severity
    title: str
    hint: str


# The single source of truth for every diagnostic the tool can emit.
# docs/writing-a-model.md lists these codes; a test asserts the two stay
# in sync.
CODE_REGISTRY: Dict[str, CodeInfo] = {}


def _register(code: str, severity: Severity, title: str, hint: str) -> str:
    CODE_REGISTRY[code] = CodeInfo(code, severity, title, hint)
    return code


# -- well-formedness ---------------------------------------------------------

V001 = _register(
    "V001", Severity.ERROR, "duplicate or mismatched registry name",
    "each operator/algorithm/enforcer name must be unique and match its key",
)
V002 = _register(
    "V002", Severity.ERROR, "pattern references unknown operator",
    "declare the operator with add_operator() or fix the spelling",
)
V003 = _register(
    "V003", Severity.ERROR, "pattern arity mismatch",
    "give the OpPattern as many inputs as the operator's declared arity",
)
V004 = _register(
    "V004", Severity.ERROR, "implementation rule targets unknown algorithm",
    "declare the algorithm with add_algorithm() or fix the rule's target",
)
V005 = _register(
    "V005", Severity.ERROR, "specification part missing",
    "fill in the missing item of the ten-item model specification",
)
V006 = _register(
    "V006", Severity.WARNING, "rewrite drops a bound pattern variable",
    "every input bound on the left side should appear in the rewrite output",
)
V007 = _register(
    "V007", Severity.ERROR, "rewrite produces unknown operator",
    "declare the produced operator or fix the rewrite function",
)
V008 = _register(
    "V008", Severity.ERROR, "rewrite output arity mismatch",
    "make the rewrite build expressions matching each operator's arity",
)
V009 = _register(
    "V009", Severity.INFO, "rule could not be probed statically",
    "the rewrite/condition needs real arguments; covered at run time instead",
)
V010 = _register(
    "V010", Severity.ERROR, "rule promise is not a finite number",
    "promise orders move pursuit; give the rule a finite numeric promise",
)

# -- coverage / closure ------------------------------------------------------

V101 = _register(
    "V101", Severity.ERROR, "logical operator has no implementation path",
    "add an implementation rule or a transformation rewriting it away",
)
V103 = _register(
    "V103", Severity.WARNING, "algorithm is never targeted by a rule",
    "add an implementation rule for it or remove the dead algorithm",
)
V104 = _register(
    "V104", Severity.ERROR, "required property component has no producer",
    "add an enforcer or an algorithm delivering the component, or drop the "
    "requires annotation",
)

# -- termination -------------------------------------------------------------

V201 = _register(
    "V201", Severity.WARNING, "unguarded growing rewrite cycle",
    "guard the rule with condition code or bound its application",
)
V202 = _register(
    "V202", Severity.INFO, "unguarded rewrite cycle terminated only by memo",
    "fine for commutativity-style rules; the memo deduplicates re-derivations",
)

# -- cost model --------------------------------------------------------------

V301 = _register(
    "V301", Severity.ERROR, "zero cost is not a neutral element",
    "zero_cost() must satisfy z + z == z and z.total() == 0",
)
V302 = _register(
    "V302", Severity.ERROR, "cost comparison is not a total order",
    "implement __lt__/__le__ so any two costs compare transitively",
)
V303 = _register(
    "V303", Severity.WARNING, "cost addition is not additive in total()",
    "(a + b).total() should equal a.total() + b.total()",
)
V304 = _register(
    "V304", Severity.WARNING, "cost subtraction does not invert addition",
    "(a + b) - b should compare equal to a",
)
V305 = _register(
    "V305", Severity.INFO, "cost ADT could not be probed",
    "the Cost type is not constructible from a float; probes skipped",
)

# -- enforcers ---------------------------------------------------------------

V401 = _register(
    "V401", Severity.ERROR, "enforcer delivers less than it was asked for",
    "the delivered vector of every application must cover the required vector",
)
V402 = _register(
    "V402", Severity.ERROR, "enforcer does not relax the goal",
    "relaxed must differ from required, or the search recurses forever",
)
V403 = _register(
    "V403", Severity.INFO, "enforcer could not be probed",
    "enforce() raised on synthetic property vectors; covered at run time",
)

# -- utility algorithms ------------------------------------------------------

V501 = _register(
    "V501", Severity.WARNING, "utility algorithm targeted by an implementation rule",
    "utility algorithms are planted by out-of-search passes; an implementation "
    "rule producing one lets the search cost a node the pass owns — drop the "
    "rule or clear the utility flag",
)
V502 = _register(
    "V502", Severity.WARNING, "utility algorithm has no feedback mirror",
    "register a mirror with repro.feedback.register_mirror (None is fine for "
    "deliberately opaque nodes) so instrumented executions do not silently "
    "misattribute its cardinalities",
)

# -- runtime memo invariants (MemoAuditor) -----------------------------------

M001 = _register(
    "M001", Severity.ERROR, "group merge chain contains a cycle",
    "canonical() must terminate; memo merge bookkeeping is corrupted",
)
M002 = _register(
    "M002", Severity.ERROR, "winner plan does not satisfy its goal",
    "the plan's derived properties must cover the goal's required vector",
)
M003 = _register(
    "M003", Severity.ERROR, "winner cost disagrees with its plan's cost",
    "the memoized cost must equal the recomputed cost of the winning plan",
)
M004 = _register(
    "M004", Severity.ERROR, "plan tree cost is negative or non-monotonic",
    "every subplan must cost no more than its parent; costs are non-negative",
)
M005 = _register(
    "M005", Severity.ERROR, "winner is not minimal among covering winners",
    "a strictly cheaper plan satisfying the same goal exists in the group",
)
M006 = _register(
    "M006", Severity.ERROR, "failure record shadows an achievable goal",
    "a goal recorded as failed is satisfied by a costed winner in the group",
)
M007 = _register(
    "M007", Severity.ERROR, "root plan does not satisfy the query requirement",
    "the returned plan's properties must cover the caller's required vector",
)
M008 = _register(
    "M008", Severity.ERROR, "batch results do not share one memo",
    "every result of a multi-query batch must come from the same "
    "batch-scoped memo, or sharing detection is meaningless",
)
M009 = _register(
    "M009", Severity.ERROR, "batch root group is stale",
    "a result's root_group must resolve to itself through the memo's "
    "union-find after all of the batch's merges settled",
)

# -- plan certificates: well-formedness (repro.verify) -----------------------

P001 = _register(
    "P001", Severity.ERROR, "certificate is malformed",
    "the certificate is missing, of an unknown kind, or structurally broken; "
    "re-optimize with certificates enabled instead of hand-building one",
)
P002 = _register(
    "P002", Severity.ERROR, "certificate claims do not align with the plan",
    "the certificate must carry exactly one claim per plan node in "
    "PhysicalPlan.walk() pre-order",
)
P003 = _register(
    "P003", Severity.ERROR, "certificate source is not the query",
    "the certificate was issued for a different input expression than the "
    "one being verified",
)

# -- plan certificates: derivation legality ----------------------------------

P101 = _register(
    "P101", Severity.ERROR, "derivation step names an unknown rule",
    "every step must name a transformation rule of the model specification",
)
P102 = _register(
    "P102", Severity.ERROR, "derivation step does not match the rule pattern",
    "the rule's pattern must match the expression at the step's path",
)
P103 = _register(
    "P103", Severity.ERROR, "derivation step fails the rule's condition",
    "the rule's condition code rejects the matched binding; the step was "
    "not a lawful application",
)
P104 = _register(
    "P104", Severity.ERROR, "derivation step output is not a rule rewrite",
    "the step's after-expression must be among the rule's rewrite outputs "
    "for the matched binding",
)

# -- plan certificates: physical properties ----------------------------------

P201 = _register(
    "P201", Severity.ERROR, "plan node names an unknown algorithm or enforcer",
    "every plan node must resolve against the model specification's "
    "algorithm/enforcer registries",
)
P202 = _register(
    "P202", Severity.ERROR, "physical-property derivation does not reproduce",
    "re-running the algorithm's derive_props over the claimed inputs must "
    "yield exactly the plan node's recorded properties",
)
P203 = _register(
    "P203", Severity.ERROR, "enforcer application violates its contract",
    "the enforcer must offer an application delivering the claimed goal with "
    "the claimed arguments, and its input must satisfy the relaxed goal",
)
P204 = _register(
    "P204", Severity.ERROR, "root properties do not cover the required goal",
    "the plan's derived properties must cover the certificate's required "
    "physical-property vector",
)
P205 = _register(
    "P205", Severity.ERROR, "claimed logical properties are inconsistent",
    "the certificate's per-node logical properties must agree with an "
    "independent derivation over the logical frontier",
)

# -- plan certificates: cost reproduction ------------------------------------

P301 = _register(
    "P301", Severity.ERROR, "cumulative plan cost does not reproduce",
    "each node's cost must equal its claimed local cost plus its inputs' "
    "costs, added in plan order",
)
P302 = _register(
    "P302", Severity.ERROR, "root cost disagrees with the claimed cost",
    "the plan's root cost must equal the certificate's claimed total exactly",
)
P303 = _register(
    "P303", Severity.ERROR, "local cost is not reproducible from the cost ADT",
    "re-invoking the algorithm's cost function over the claimed logical "
    "properties must reproduce the claimed local cost exactly",
)

# -- plan certificates: logical equivalence ----------------------------------

P401 = _register(
    "P401", Severity.ERROR, "derivation chain does not end at the frontier",
    "replaying the certificate's steps from the source expression must "
    "produce exactly the recorded logical frontier",
)
P402 = _register(
    "P402", Severity.ERROR, "frontier does not correspond to the plan",
    "walking the frontier and the plan in lockstep, every node must be "
    "produced by its claimed implementation rule from the frontier subtree",
)
P403 = _register(
    "P403", Severity.ERROR, "dangling intermediate reference",
    "a scan_intermediate node references a materialized intermediate the "
    "certificate does not define (or defines inconsistently)",
)
P404 = _register(
    "P404", Severity.ERROR, "logical equivalence not established",
    "the certificate provides neither a replayable derivation chain nor a "
    "normalizable frontier; the plan cannot be proven equivalent to the query",
)


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a code, where it points, and prose."""

    code: str
    subject: str
    message: str
    severity: Severity = field(default=Severity.ERROR)

    @staticmethod
    def make(code: str, subject: str, message: str) -> "Diagnostic":
        info = CODE_REGISTRY[code]
        return Diagnostic(code, subject, message, info.severity)

    def render(self) -> str:
        """One-line human-readable form: ``CODE severity: subject: message``."""
        return f"{self.code} {self.severity}: {self.subject}: {self.message}"


@dataclass
class LintReport:
    """All diagnostics for one specification."""

    spec_name: str
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, code: str, subject: str, message: str) -> None:
        """Append a diagnostic, taking its severity from the registry."""
        self.diagnostics.append(Diagnostic.make(code, subject, message))

    def extend(self, other: Iterable[Diagnostic]) -> None:
        """Append already-built diagnostics (e.g. from a MemoAuditor)."""
        self.diagnostics.extend(other)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        """The diagnostics of exactly this severity."""
        return [d for d in self.diagnostics if d.severity == severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> List[Diagnostic]:
        return self.by_severity(Severity.INFO)

    def codes(self) -> Tuple[str, ...]:
        """Diagnostic codes in emission order (repeats included)."""
        return tuple(d.code for d in self.diagnostics)

    def worst(self) -> Optional[Severity]:
        """The highest severity present, or None for a clean report."""
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def fails(self, strict: bool = False) -> bool:
        """Whether this report should make the lint run exit non-zero."""
        threshold = Severity.WARNING if strict else Severity.ERROR
        worst = self.worst()
        return worst is not None and worst >= threshold

    def render(self) -> str:
        """Multi-line report, diagnostics ordered worst-first."""
        lines = [f"== {self.spec_name} =="]
        if not self.diagnostics:
            lines.append("clean")
        for diagnostic in sorted(
            self.diagnostics, key=lambda d: (-d.severity, d.code, d.subject)
        ):
            lines.append("  " + diagnostic.render())
        return "\n".join(lines)
