"""Runtime counterpart of the static linter: memo invariant auditing.

The paper leans on "one of many consistency checks" inside the generated
optimizer; :class:`MemoAuditor` is the external version — it attaches to
any memo-based engine via ``post_optimize_hooks`` and, after each
search, verifies structural invariants of the solved memo:

* the group-merge bookkeeping is acyclic (``canonical()`` terminates);
* every memoized winner satisfies its goal's property vector and its
  recorded cost matches its plan's cost;
* plan-tree costs are non-negative and monotonic (a node's cumulative
  cost is at least each input's);
* winners are minimal: no other costed winner of the same group both
  satisfies a goal and beats its recorded winner;
* failure records do not shadow achievable goals: no eligible winner
  costs less than the limit a failure was recorded at;
* the returned root plan satisfies the caller's requirement.

Violations are reported as :class:`~repro.lint.diagnostics.Diagnostic`
values with ``M0xx`` codes, so the CLI and the figure-4 benchmark can
fold them into the same reporting as the static checks.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set

from repro.algebra.plans import PhysicalPlan
from repro.algebra.properties import PhysProps
from repro.lint.diagnostics import Diagnostic

__all__ = ["MemoAuditor"]

CoverFn = Callable[[PhysProps, PhysProps], bool]


def _default_cover(provided: PhysProps, required: PhysProps) -> bool:
    return provided.covers(required)


class MemoAuditor:
    """Verifies memo invariants after each optimization.

    Use :meth:`attach` to hook an engine (accumulating violations over
    every subsequent run), or call :meth:`audit` directly on one
    :class:`~repro.search.engine.OptimizationResult`.  Results without a
    memo (EXODUS, System R) audit trivially clean.
    """

    def __init__(
        self,
        props_cover: Optional[CoverFn] = None,
        tolerance: float = 1e-6,
    ):
        self.props_cover = props_cover or _default_cover
        self.tolerance = tolerance
        self.violations: List[Diagnostic] = []
        self.audits = 0

    def attach(self, optimizer) -> "MemoAuditor":
        """Audit every future run of ``optimizer``; returns self."""
        self.props_cover = optimizer.spec.props_cover
        optimizer.post_optimize_hooks.append(self._on_result)
        return self

    def _on_result(self, result) -> None:
        self.audits += 1
        self.violations.extend(self.audit(result))

    # -- the checks -------------------------------------------------------

    def audit(self, result) -> List[Diagnostic]:
        """All invariant violations in one optimization result."""
        memo = result.memo
        if memo is None:
            return []
        found: List[Diagnostic] = []
        self._check_merge_chains(memo, found)
        for group in memo.groups():
            self._check_group(group, found)
        self._check_root(result, found)
        return found

    def audit_batch(self, results) -> List[Diagnostic]:
        """Cross-root invariants of one multi-query batch.

        On top of the per-result checks (shared-memo group invariants
        are verified once, not once per result):

        * **M008** — every result's memo is the *same object*: the whole
          point of a batch-scoped memo is that cross-query common
          subexpressions collide, and results from stray memos would
          silently defeat sharing detection;
        * **M009** — every result's ``root_group`` is canonical: merges
          triggered by later queries must have been resolved before the
          results were built, or the recorded roots point at corpses.
        """
        results = list(results)
        if not results:
            return []
        found: List[Diagnostic] = []
        memo = results[0].memo
        if memo is None:
            return []
        for index, result in enumerate(results):
            if result.memo is not memo:
                found.append(
                    Diagnostic.make(
                        "M008",
                        f"batch result #{index}",
                        "result carries a different memo than the batch's "
                        "first result; batch optimization must share one",
                    )
                )
        self._check_merge_chains(memo, found)
        for group in memo.groups():
            self._check_group(group, found)
        for index, result in enumerate(results):
            root = result.root_group
            if root is not None and memo.canonical(root) != root:
                found.append(
                    Diagnostic.make(
                        "M009",
                        f"batch result #{index}",
                        f"root_group g{root} resolves to "
                        f"g{memo.canonical(root)}; roots must be canonical",
                    )
                )
            self._check_root(result, found)
        return found

    def _close(self, left: float, right: float) -> bool:
        scale = max(1.0, abs(left), abs(right))
        return abs(left - right) <= self.tolerance * scale

    def _check_merge_chains(self, memo, found: List[Diagnostic]) -> None:
        # Walk merged_into chains over the raw table; canonical() itself
        # would not survive a cycle, which is the point of the check.
        for start, group in memo._groups.items():
            seen: Set[int] = set()
            current = group
            while current.merged_into is not None:
                if current.id in seen:
                    found.append(
                        Diagnostic.make(
                            "M001",
                            f"group g{start}",
                            "merge chain revisits "
                            f"g{current.id}; canonical() cannot terminate",
                        )
                    )
                    break
                seen.add(current.id)
                current = memo._groups[current.merged_into]

    def _check_group(self, group, found: List[Diagnostic]) -> None:
        for (required, excluded), winner in group.winners.items():
            subject = f"group g{group.id} goal [{required}]"
            if not self.props_cover(winner.plan.properties, required):
                found.append(
                    Diagnostic.make(
                        "M002",
                        subject,
                        f"winner delivers [{winner.plan.properties}] which "
                        f"does not cover the goal",
                    )
                )
            plan_cost = winner.plan.cost
            if plan_cost is not None and not self._close(
                winner.cost.total(), plan_cost.total()
            ):
                found.append(
                    Diagnostic.make(
                        "M003",
                        subject,
                        f"memoized cost {winner.cost} but the plan's own "
                        f"cost is {plan_cost}",
                    )
                )
            self._check_plan_costs(winner.plan, subject, found)

        self._check_winner_minimality(group, found)
        self._check_failures(group, found)

    def _check_plan_costs(
        self, plan: PhysicalPlan, subject: str, found: List[Diagnostic]
    ) -> None:
        for node in plan.walk():
            if node.cost is None:
                continue
            total = node.cost.total()
            if total < 0:
                found.append(
                    Diagnostic.make(
                        "M004",
                        subject,
                        f"node {node.algorithm!r} has negative cost {node.cost}",
                    )
                )
                return
            for child in node.inputs:
                if child.cost is None:
                    continue
                if child.cost.total() > total and not self._close(
                    child.cost.total(), total
                ):
                    found.append(
                        Diagnostic.make(
                            "M004",
                            subject,
                            f"input {child.algorithm!r} costs {child.cost}, "
                            f"more than its parent {node.algorithm!r} at "
                            f"{node.cost}; cumulative cost must be monotonic",
                        )
                    )
                    return

    def _check_winner_minimality(self, group, found: List[Diagnostic]) -> None:
        # Only ordinary goals: an excluding vector bars part of the plan
        # space, so winners found under one are not comparable.
        plain = [
            (required, winner)
            for (required, excluded), winner in group.winners.items()
            if excluded is None
        ]
        for required, winner in plain:
            for other_required, other in plain:
                if other is winner:
                    continue
                if not self.props_cover(other.plan.properties, required):
                    continue
                if other.cost.total() < winner.cost.total() and not self._close(
                    other.cost.total(), winner.cost.total()
                ):
                    found.append(
                        Diagnostic.make(
                            "M005",
                            f"group g{group.id} goal [{required}]",
                            f"winner costs {winner.cost} but the winner for "
                            f"[{other_required}] satisfies the same goal at "
                            f"{other.cost}",
                        )
                    )

    def _check_failures(self, group, found: List[Diagnostic]) -> None:
        for (required, excluded), limit in group.failures.items():
            for (_, other_excluded), winner in group.winners.items():
                if not self.props_cover(winner.plan.properties, required):
                    continue
                if excluded is not None and self.props_cover(
                    winner.plan.properties, excluded
                ):
                    # The winner falls in the goal's excluded region; it
                    # was legitimately out of reach for that search.
                    continue
                if winner.cost.total() < limit.total() and not self._close(
                    winner.cost.total(), limit.total()
                ):
                    found.append(
                        Diagnostic.make(
                            "M006",
                            f"group g{group.id} goal [{required}]",
                            f"recorded as failed at limit {limit} but a "
                            f"winner satisfying it costs {winner.cost}",
                        )
                    )
                    break

    def _check_root(self, result, found: List[Diagnostic]) -> None:
        if result.plan is None:
            return
        if not self.props_cover(result.plan.properties, result.required):
            found.append(
                Diagnostic.make(
                    "M007",
                    "root plan",
                    f"delivers [{result.plan.properties}] which does not "
                    f"cover the query requirement [{result.required}]",
                )
            )
