"""Rule-application graph over operator signatures.

Transformation rules induce a directed graph on logical operator names:
an edge ``a -> b`` means some rule matching a tree rooted in ``a`` can
produce a tree containing ``b``.  A cycle of *unguarded* rules (no
condition code) means the rule set can re-derive expressions forever and
relies entirely on the memo's duplicate detection to terminate — which
is fine for size-preserving rules like join commutativity (the finite
expression space bounds the search) but dangerous for *growing* rules,
whose output has more operator nodes than their pattern: the expression
space itself is then unbounded.

The linter builds the edges by probing each rule's rewrite function with
synthetic bindings (see :mod:`repro.lint.analyzer`); this module only
does the graph theory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple


@dataclass(frozen=True)
class RuleEdge:
    """One probed rewrite: rule ``rule`` turns ``source`` trees into
    trees containing each operator in ``targets``; ``grows`` records
    whether the output had more operator nodes than the pattern."""

    rule: str
    source: str
    targets: Tuple[str, ...]
    grows: bool


@dataclass
class Cycle:
    """A strongly connected component of the unguarded-rule graph."""

    operators: FrozenSet[str]
    rules: Tuple[str, ...]
    grows: bool = field(default=False)

    def describe(self) -> str:
        """Human-readable summary naming the operators and rules involved."""
        ops = " -> ".join(sorted(self.operators))
        rules = ", ".join(sorted(set(self.rules)))
        return f"operators [{ops}] via rules [{rules}]"


def _strongly_connected_components(
    graph: Dict[str, Set[str]]
) -> List[FrozenSet[str]]:
    """Tarjan's algorithm, iterative to dodge recursion limits."""
    index_of: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[FrozenSet[str]] = []
    counter = [0]

    for root in graph:
        if root in index_of:
            continue
        # Each frame: (node, iterator over successors).
        work = [(root, iter(sorted(graph.get(root, ()))))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in graph:
                    continue
                if successor not in index_of:
                    index_of[successor] = lowlink[successor] = counter[0]
                    counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append(
                        (successor, iter(sorted(graph.get(successor, ()))))
                    )
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: Set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(frozenset(component))
    return components


def find_unguarded_cycles(edges: Iterable[RuleEdge]) -> List[Cycle]:
    """Cycles in the graph formed by the given (unguarded) rule edges.

    Returns one :class:`Cycle` per strongly connected component that
    actually contains a cycle (more than one node, or a self-loop).  A
    cycle ``grows`` if any participating edge does.
    """
    edge_list = list(edges)
    graph: Dict[str, Set[str]] = {}
    for edge in edge_list:
        graph.setdefault(edge.source, set()).update(edge.targets)
        for target in edge.targets:
            graph.setdefault(target, set())

    cycles: List[Cycle] = []
    for component in _strongly_connected_components(graph):
        is_cycle = len(component) > 1 or any(
            node in graph[node] for node in component
        )
        if not is_cycle:
            continue
        participating = [
            edge
            for edge in edge_list
            if edge.source in component
            and any(target in component for target in edge.targets)
        ]
        cycles.append(
            Cycle(
                operators=component,
                rules=tuple(edge.rule for edge in participating),
                grows=any(edge.grows for edge in participating),
            )
        )
    return cycles
