"""Command-line entry point: ``python -m repro.lint``.

Lints the bundled model specifications (``--all``) and/or
user-supplied ones named as ``module:callable`` (the callable must
return a :class:`~repro.model.spec.ModelSpecification`; a module path
alone is accepted when the module exposes a module-level ``spec`` or a
zero-argument ``model``/``build`` function).

Exit status: 0 when every linted model is clean at the failing
severity, 1 when any model has errors (or warnings under ``--strict``),
2 on usage or load problems.  Info diagnostics never fail a run.
"""

from __future__ import annotations

import argparse
import importlib
from typing import Callable, List, Optional, Sequence, Tuple

from repro.lint.analyzer import lint_spec
from repro.lint.diagnostics import CODE_REGISTRY, LintReport
from repro.model.spec import ModelSpecification

__all__ = ["main", "bundled_models"]


def bundled_models() -> List[Tuple[str, Callable[[], ModelSpecification]]]:
    """The model builders shipped in :mod:`repro.models`."""
    from repro.models import (
        aggregate_model,
        oodb_model,
        parallel_relational_model,
        relational_model,
        setops_model,
    )

    return [
        ("relational", relational_model),
        ("setops", setops_model),
        ("parallel", parallel_relational_model),
        ("oodb", oodb_model),
        ("aggregates", aggregate_model),
    ]


_FALLBACK_ATTRIBUTES = ("spec", "model", "build")


def load_spec(target: str) -> ModelSpecification:
    """Resolve ``module:callable`` (or bare module) to a specification."""
    module_name, _, attribute = target.partition(":")
    module = importlib.import_module(module_name)
    if attribute:
        candidates = [attribute]
    else:
        candidates = [
            name for name in _FALLBACK_ATTRIBUTES if hasattr(module, name)
        ]
        if not candidates:
            raise ValueError(
                f"{module_name} has none of {', '.join(_FALLBACK_ATTRIBUTES)}; "
                "name the builder explicitly as module:callable"
            )
    value = getattr(module, candidates[0], None)
    if value is None:
        raise ValueError(f"{module_name} has no attribute {candidates[0]!r}")
    if callable(value) and not isinstance(value, ModelSpecification):
        value = value()
    if not isinstance(value, ModelSpecification):
        raise ValueError(
            f"{target} resolved to {type(value).__name__}, "
            "not a ModelSpecification"
        )
    return value


_FAMILIES = (
    ("V", "static model diagnostics (lint_spec)"),
    ("M", "runtime memo invariants (MemoAuditor)"),
    ("P", "plan-certificate verification (repro.verify)"),
)


def _list_codes() -> str:
    """Every registered diagnostic code, grouped by family.

    The V (static lint), M (memo audit), and P (plan verification)
    families live in the one shared registry; listing them together is
    the point — one stable namespace of diagnoseable conditions.
    """
    lines = ["known diagnostic codes:"]
    for prefix, label in _FAMILIES:
        members = sorted(code for code in CODE_REGISTRY if code[0] == prefix)
        if not members:
            continue
        lines.append(f"{prefix}xxx — {label}:")
        for code in members:
            info = CODE_REGISTRY[code]
            lines.append(
                f"  {code} [{info.severity}] {info.title} — {info.hint}"
            )
    leftovers = sorted(
        code
        for code in CODE_REGISTRY
        if code[0] not in {prefix for prefix, _ in _FAMILIES}
    )
    for code in leftovers:
        info = CODE_REGISTRY[code]
        lines.append(f"  {code} [{info.severity}] {info.title} — {info.hint}")
    return "\n".join(lines)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Statically analyze optimizer model specifications.",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        metavar="module:callable",
        help="import path of a specification builder to lint",
    )
    parser.add_argument(
        "--all",
        action="store_true",
        help="lint every bundled model specification",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as failures (infos never fail)",
    )
    parser.add_argument(
        "--list-codes",
        action="store_true",
        help="print every diagnostic code with its fix hint and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the linter CLI; returns the process exit status (0/1/2)."""
    parser = _build_parser()
    options = parser.parse_args(argv)

    if options.list_codes:
        print(_list_codes())
        return 0
    if not options.targets and not options.all:
        parser.print_usage()
        print("error: nothing to lint; name a module:callable or pass --all")
        return 2

    jobs: List[Tuple[str, Callable[[], ModelSpecification]]] = []
    if options.all:
        jobs.extend(bundled_models())
    for target in options.targets:
        jobs.append((target, lambda target=target: load_spec(target)))

    reports: List[LintReport] = []
    for label, build in jobs:
        try:
            spec = build()
        except Exception as error:
            print(f"== {label} ==")
            print(f"  failed to load: {error}")
            return 2
        reports.append(lint_spec(spec))

    failed = False
    for report in reports:
        print(report.render())
        if report.fails(strict=options.strict):
            failed = True
    total = sum(len(report) for report in reports)
    errors = sum(len(report.errors) for report in reports)
    warnings = sum(len(report.warnings) for report in reports)
    print(
        f"linted {len(reports)} model(s): {total} diagnostic(s), "
        f"{errors} error(s), {warnings} warning(s)"
    )
    return 1 if failed else 0
