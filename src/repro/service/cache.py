"""The bounded, version-aware plan cache behind the optimizer service.

A plain LRU mapping from :class:`~repro.service.fingerprint.Fingerprint`
digests to cached plans, with two twists:

* every entry remembers the per-table statistics versions it was built
  under, so :meth:`PlanCache.purge_stale` can drop exactly the entries
  whose tables have changed — no TTLs, no global flushes;
* every operation is counted in :class:`CacheStats`, mirroring how the
  search engine itself exposes :class:`~repro.search.SearchStats`.

Both are safe under concurrent access: the long-lived server
(:mod:`repro.server`) runs optimizations on a thread pool against one
shared cache, so :class:`PlanCache` guards its LRU structure with a
lock and :class:`CacheStats` mutations go through the atomic
:meth:`CacheStats.bump`.  A consistent point-in-time copy of the
counters — what the server's stats endpoint serves — comes from
:meth:`CacheStats.snapshot`, which freezes the copy against further
mutation.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.algebra.plans import PhysicalPlan
from repro.algebra.properties import PhysProps
from repro.catalog.catalog import Catalog
from repro.errors import ServiceError
from repro.service.fingerprint import Fingerprint

__all__ = ["CacheStats", "CacheEntry", "PlanCache"]


@dataclass
class CacheStats:
    """Operation counters of one :class:`PlanCache`.

    ``hits`` counts exact-fingerprint hits only; a lookup served from a
    parameterized template counts under ``parameterized_hits`` (the
    service tries exact first, then the template).  ``invalidations``
    counts entries dropped because a table's statistics version moved,
    ``evictions`` entries dropped by the LRU bound.  ``degraded`` counts
    engine answers produced under a tripped resource budget — the
    service serves them but never caches them, so the counter lets
    operators tell fast-because-cached answers from
    fast-because-degraded ones.

    ``shared_waits`` counts answers served by *waiting on another
    in-flight optimization of the same fingerprint* (per-key
    single-flight deduplication: one engine run per cold key, every
    concurrent requester shares its answer).

    ``hit_seconds`` accumulates the *service-side* latency of answers
    served from the cache, and ``engine_seconds`` the engine wall-clock
    of fresh runs.  The split exists so batch drivers never double-count:
    a warm hit's latency is the lookup cost actually paid *now*, not the
    original optimization's ``SearchStats.elapsed_seconds`` (which was
    already accounted under ``engine_seconds`` when the entry was
    built).

    With ``ServiceOptions.verify_plans`` on, three more counters track
    the independent checker (:mod:`repro.verify`): ``verified_hits``
    counts cache hits whose certificate re-verified clean,
    ``verify_violations`` every P-diagnosed verification failure (fresh
    or cached), and ``quarantined`` entries (or sharing passes) dropped
    because their certificate no longer checked out.

    Concurrency contract: writers call :meth:`bump` (atomic under an
    internal lock — a bare ``stats.hits += 1`` from two threads can
    lose an increment between the read and the write-back); readers
    wanting a consistent multi-counter view call :meth:`snapshot`,
    which returns a *frozen* copy — further :meth:`bump` calls on the
    copy raise, so a snapshot handed to a stats endpoint can never
    mutate under the response serializer.
    """

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    parameterized_hits: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidations: int = 0
    degraded: int = 0
    shared_waits: int = 0
    verified_hits: int = 0
    verify_violations: int = 0
    quarantined: int = 0
    hit_seconds: float = 0.0
    engine_seconds: float = 0.0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._frozen = False

    def bump(self, **deltas: float) -> None:
        """Atomically add ``deltas`` to the named counters.

        The one sanctioned mutation path: the read-add-write of every
        named counter happens under one lock acquisition, so concurrent
        workers never lose increments and multi-counter updates (a hit
        plus its latency, say) land together.
        """
        if self._frozen:
            raise ServiceError("cannot bump a frozen CacheStats snapshot")
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)

    def snapshot(self) -> "CacheStats":
        """A consistent, *frozen* point-in-time copy of the counters.

        Taken under the same lock :meth:`bump` uses, so no in-flight
        update is half-visible.  The copy rejects further ``bump``
        calls — it is a value, not a live view.
        """
        with self._lock:
            copy = CacheStats(**{
                f.name: getattr(self, f.name) for f in dataclasses.fields(self)
            })
        copy._frozen = True
        return copy

    @property
    def frozen(self) -> bool:
        """Whether this is an immutable :meth:`snapshot` copy."""
        return self._frozen

    def counters(self) -> Dict[str, float]:
        """The raw counter fields as a dict (no derived metrics)."""
        with self._lock:
            return {
                f.name: getattr(self, f.name) for f in dataclasses.fields(self)
            }

    def __getstate__(self):
        # The lock is process-local; pickled stats travel as plain
        # counters and re-grow a lock (unfrozen) on the other side.
        state = {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}
        state["_frozen"] = self._frozen
        return state

    def __setstate__(self, state):
        frozen = state.pop("_frozen", False)
        for name, value in state.items():
            object.__setattr__(self, name, value)
        self._lock = threading.Lock()
        self._frozen = frozen

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (either way)."""
        if not self.lookups:
            return 0.0
        return (self.hits + self.parameterized_hits) / self.lookups

    def as_dict(self) -> Dict[str, float]:
        """The counters as a plain dict (for reports and assertions)."""
        payload = self.counters()
        payload["hit_rate"] = self.hit_rate
        return payload

    def __str__(self) -> str:
        return (
            f"{self.lookups} lookups, {self.hits} hits "
            f"(+{self.parameterized_hits} parameterized), "
            f"{self.misses} misses, {self.evictions} evictions, "
            f"{self.invalidations} invalidations"
        )


@dataclass(frozen=True)
class CacheEntry:
    """One cached answer: the plan, its cost, and what it depends on.

    ``certificate`` is the plan's provenance certificate
    (:class:`~repro.verify.PlanCertificate`) when the producing engine
    emitted one; with ``ServiceOptions.verify_plans`` it is re-checked
    on every hit.  Template (parameterized) entries never carry one —
    re-bound literals would not match the recorded derivation.
    """

    fingerprint: Fingerprint
    plan: PhysicalPlan
    cost: object
    required: PhysProps
    parameterized: bool = False
    certificate: Optional[object] = None


@dataclass
class PlanCache:
    """An LRU plan cache keyed by fingerprint digest.

    ``max_entries`` bounds the cache; inserting beyond it evicts the
    least recently used entry.  Hits refresh recency.

    Thread-safe: every structural operation (lookup, insert, removal,
    sweep) holds one internal lock, so concurrent server workers see a
    consistent LRU and never corrupt the underlying ordered dict.
    """

    max_entries: int = 512
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self):
        if self.max_entries <= 0:
            raise ServiceError("max_entries must be positive")
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: Fingerprint) -> bool:
        with self._lock:
            return fingerprint.digest in self._entries

    def get(self, fingerprint: Fingerprint) -> Optional[CacheEntry]:
        """Look up an entry; counts a hit/miss and refreshes recency."""
        with self._lock:
            entry = self._entries.get(fingerprint.digest)
            if entry is None:
                self.stats.bump(lookups=1, misses=1)
                return None
            self._entries.move_to_end(fingerprint.digest)
            if entry.parameterized:
                self.stats.bump(lookups=1, parameterized_hits=1)
            else:
                self.stats.bump(lookups=1, hits=1)
            return entry

    def peek(self, fingerprint: Fingerprint) -> Optional[CacheEntry]:
        """Look up an entry without counting or refreshing recency.

        The single-flight re-check path: a late leader (whose first
        lookup missed before another thread populated the entry) probes
        once more before paying for an engine run.
        """
        with self._lock:
            return self._entries.get(fingerprint.digest)

    def put(self, entry: CacheEntry) -> None:
        """Insert (or refresh) an entry, evicting LRU past the bound."""
        with self._lock:
            digest = entry.fingerprint.digest
            if digest in self._entries:
                self._entries.move_to_end(digest)
            self._entries[digest] = entry
            self.stats.bump(insertions=1)
            evicted = 0
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                evicted += 1
            if evicted:
                self.stats.bump(evictions=evicted)

    def remove(self, fingerprint: Fingerprint) -> bool:
        """Drop one entry by fingerprint (certificate quarantine).

        Returns whether an entry was actually present.  Counted under
        ``stats.quarantined`` by the caller, not here — removal is also
        used by tests as a plain eviction primitive.
        """
        with self._lock:
            return self._entries.pop(fingerprint.digest, None) is not None

    def purge_stale(self, catalog: Catalog) -> int:
        """Drop every entry whose table versions no longer match.

        Returns the number of entries invalidated.  An entry is stale
        when any table it reads has been re-registered, dropped, or had
        its statistics updated since the entry was cached — detected by
        comparing the recorded per-table versions with the catalog's
        current ones.  Entries over unchanged tables are untouched.
        """
        with self._lock:
            stale = []
            for digest, entry in self._entries.items():
                for name, version in zip(
                    entry.fingerprint.tables, entry.fingerprint.versions
                ):
                    if name not in catalog or catalog.table_version(name) != version:
                        stale.append(digest)
                        break
            for digest in stale:
                del self._entries[digest]
            if stale:
                self.stats.bump(invalidations=len(stale))
            return len(stale)

    def invalidate_table(self, name: str) -> int:
        """Drop every entry that reads ``name``; returns how many."""
        with self._lock:
            stale = [
                digest
                for digest, entry in self._entries.items()
                if name in entry.fingerprint.tables
            ]
            for digest in stale:
                del self._entries[digest]
            if stale:
                self.stats.bump(invalidations=len(stale))
            return len(stale)

    def clear(self) -> None:
        """Drop everything (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def entries(self) -> Tuple[CacheEntry, ...]:
        """A snapshot of the entries, LRU first."""
        with self._lock:
            return tuple(self._entries.values())
