"""The bounded, version-aware plan cache behind the optimizer service.

A plain LRU mapping from :class:`~repro.service.fingerprint.Fingerprint`
digests to cached plans, with two twists:

* every entry remembers the per-table statistics versions it was built
  under, so :meth:`PlanCache.purge_stale` can drop exactly the entries
  whose tables have changed — no TTLs, no global flushes;
* every operation is counted in :class:`CacheStats`, mirroring how the
  search engine itself exposes :class:`~repro.search.SearchStats`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.algebra.plans import PhysicalPlan
from repro.algebra.properties import PhysProps
from repro.catalog.catalog import Catalog
from repro.errors import ServiceError
from repro.service.fingerprint import Fingerprint

__all__ = ["CacheStats", "CacheEntry", "PlanCache"]


@dataclass
class CacheStats:
    """Operation counters of one :class:`PlanCache`.

    ``hits`` counts exact-fingerprint hits only; a lookup served from a
    parameterized template counts under ``parameterized_hits`` (the
    service tries exact first, then the template).  ``invalidations``
    counts entries dropped because a table's statistics version moved,
    ``evictions`` entries dropped by the LRU bound.  ``degraded`` counts
    engine answers produced under a tripped resource budget — the
    service serves them but never caches them, so the counter lets
    operators tell fast-because-cached answers from
    fast-because-degraded ones.

    ``hit_seconds`` accumulates the *service-side* latency of answers
    served from the cache, and ``engine_seconds`` the engine wall-clock
    of fresh runs.  The split exists so batch drivers never double-count:
    a warm hit's latency is the lookup cost actually paid *now*, not the
    original optimization's ``SearchStats.elapsed_seconds`` (which was
    already accounted under ``engine_seconds`` when the entry was
    built).

    With ``ServiceOptions.verify_plans`` on, three more counters track
    the independent checker (:mod:`repro.verify`): ``verified_hits``
    counts cache hits whose certificate re-verified clean,
    ``verify_violations`` every P-diagnosed verification failure (fresh
    or cached), and ``quarantined`` entries (or sharing passes) dropped
    because their certificate no longer checked out.
    """

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    parameterized_hits: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidations: int = 0
    degraded: int = 0
    verified_hits: int = 0
    verify_violations: int = 0
    quarantined: int = 0
    hit_seconds: float = 0.0
    engine_seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (either way)."""
        if not self.lookups:
            return 0.0
        return (self.hits + self.parameterized_hits) / self.lookups

    def as_dict(self) -> Dict[str, float]:
        """The counters as a plain dict (for reports and assertions)."""
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "parameterized_hits": self.parameterized_hits,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "degraded": self.degraded,
            "verified_hits": self.verified_hits,
            "verify_violations": self.verify_violations,
            "quarantined": self.quarantined,
            "hit_seconds": self.hit_seconds,
            "engine_seconds": self.engine_seconds,
            "hit_rate": self.hit_rate,
        }

    def __str__(self) -> str:
        return (
            f"{self.lookups} lookups, {self.hits} hits "
            f"(+{self.parameterized_hits} parameterized), "
            f"{self.misses} misses, {self.evictions} evictions, "
            f"{self.invalidations} invalidations"
        )


@dataclass(frozen=True)
class CacheEntry:
    """One cached answer: the plan, its cost, and what it depends on.

    ``certificate`` is the plan's provenance certificate
    (:class:`~repro.verify.PlanCertificate`) when the producing engine
    emitted one; with ``ServiceOptions.verify_plans`` it is re-checked
    on every hit.  Template (parameterized) entries never carry one —
    re-bound literals would not match the recorded derivation.
    """

    fingerprint: Fingerprint
    plan: PhysicalPlan
    cost: object
    required: PhysProps
    parameterized: bool = False
    certificate: Optional[object] = None


@dataclass
class PlanCache:
    """An LRU plan cache keyed by fingerprint digest.

    ``max_entries`` bounds the cache; inserting beyond it evicts the
    least recently used entry.  Hits refresh recency.
    """

    max_entries: int = 512
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self):
        if self.max_entries <= 0:
            raise ServiceError("max_entries must be positive")
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: Fingerprint) -> bool:
        return fingerprint.digest in self._entries

    def get(self, fingerprint: Fingerprint) -> Optional[CacheEntry]:
        """Look up an entry; counts a hit/miss and refreshes recency."""
        self.stats.lookups += 1
        entry = self._entries.get(fingerprint.digest)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(fingerprint.digest)
        if entry.parameterized:
            self.stats.parameterized_hits += 1
        else:
            self.stats.hits += 1
        return entry

    def put(self, entry: CacheEntry) -> None:
        """Insert (or refresh) an entry, evicting LRU past the bound."""
        digest = entry.fingerprint.digest
        if digest in self._entries:
            self._entries.move_to_end(digest)
        self._entries[digest] = entry
        self.stats.insertions += 1
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def remove(self, fingerprint: Fingerprint) -> bool:
        """Drop one entry by fingerprint (certificate quarantine).

        Returns whether an entry was actually present.  Counted under
        ``stats.quarantined`` by the caller, not here — removal is also
        used by tests as a plain eviction primitive.
        """
        return self._entries.pop(fingerprint.digest, None) is not None

    def purge_stale(self, catalog: Catalog) -> int:
        """Drop every entry whose table versions no longer match.

        Returns the number of entries invalidated.  An entry is stale
        when any table it reads has been re-registered, dropped, or had
        its statistics updated since the entry was cached — detected by
        comparing the recorded per-table versions with the catalog's
        current ones.  Entries over unchanged tables are untouched.
        """
        stale = []
        for digest, entry in self._entries.items():
            for name, version in zip(
                entry.fingerprint.tables, entry.fingerprint.versions
            ):
                if name not in catalog or catalog.table_version(name) != version:
                    stale.append(digest)
                    break
        for digest in stale:
            del self._entries[digest]
        self.stats.invalidations += len(stale)
        return len(stale)

    def invalidate_table(self, name: str) -> int:
        """Drop every entry that reads ``name``; returns how many."""
        stale = [
            digest
            for digest, entry in self._entries.items()
            if name in entry.fingerprint.tables
        ]
        for digest in stale:
            del self._entries[digest]
        self.stats.invalidations += len(stale)
        return len(stale)

    def clear(self) -> None:
        """Drop everything (counters are kept)."""
        self._entries.clear()

    def entries(self) -> Tuple[CacheEntry, ...]:
        """A snapshot of the entries, LRU first."""
        return tuple(self._entries.values())
