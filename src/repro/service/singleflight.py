"""Per-key single-flight deduplication of concurrent optimizations.

The long-lived optimizer server (:mod:`repro.server`) runs many
requests against one shared plan cache.  When M requests for the same
cold fingerprint arrive together, running the engine M times wastes
M−1 optimizations that would all produce the same plan (each search is
deterministic).  :class:`SingleFlight` collapses them: the first
requester for a key becomes the **leader** and computes; every
concurrent requester for the same key becomes a **follower** and waits
on the leader's flight, sharing its answer (or its exception).

The guarantee is *per-key in-flight* deduplication, not caching: once
the leader finishes, the flight is retired and the next request for
the key starts fresh (by then the plan cache answers it).  Keys are
plain strings — the service uses the cache fingerprint digest, so two
requests deduplicate exactly when they would have hit the same cache
entry.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Generic, Optional, Tuple, TypeVar

__all__ = ["SingleFlight"]

T = TypeVar("T")


class _Flight(Generic[T]):
    """One in-progress computation: a result slot behind an event."""

    __slots__ = ("done", "value", "error", "waiters")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.value: Optional[T] = None
        self.error: Optional[BaseException] = None
        self.waiters = 0


class SingleFlight(Generic[T]):
    """Collapse concurrent calls for the same key into one execution.

    >>> flight = SingleFlight()
    >>> value, leader = flight.do("key", expensive)   # runs expensive()
    >>> # concurrently: value, leader = flight.do("key", expensive)
    >>> # ... waits and returns the same value with leader=False

    The leader's exception propagates to every waiting follower (each
    gets the *same* exception object), and the flight is always retired
    afterwards, so a failed key can be retried by the next caller.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: Dict[str, _Flight[T]] = {}

    def inflight(self) -> int:
        """How many keys currently have a flight in progress."""
        with self._lock:
            return len(self._flights)

    def do(self, key: str, fn: Callable[[], T]) -> Tuple[T, bool]:
        """Run ``fn`` once per concurrent ``key``; share the answer.

        Returns ``(value, leader)``: ``leader`` is True for the caller
        that actually executed ``fn``, False for callers that waited on
        an in-flight execution and received its shared value.
        """
        with self._lock:
            flight = self._flights.get(key)
            leader = flight is None
            if leader:
                flight = _Flight()
                self._flights[key] = flight
            else:
                flight.waiters += 1
        if not leader:
            # Follower: the leader is (or was) computing; wait it out.
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            return flight.value, False  # type: ignore[return-value]
        try:
            flight.value = fn()
            return flight.value, True
        except BaseException as error:
            flight.error = error
            raise
        finally:
            with self._lock:
                self._flights.pop(key, None)
            flight.done.set()
