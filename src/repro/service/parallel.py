"""Process-pool fan-out for :meth:`OptimizerService.optimize_many`.

Optimizing a batch of queries is embarrassingly parallel — each engine
run owns its memo, and the engines are reentrant — but the *optimizer
object* is not picklable (model specifications carry rule closures).
The driver therefore uses the ``fork`` start method: the parent stashes
the optimizer in a module global immediately before creating the pool,
and each forked worker inherits it by memory image.  Only plain data
crosses the pipe afterwards: queries, property vectors, options, and
slim :class:`~repro.search.OptimizationResult` payloads (no memo, no
tracer), all of which pickle cleanly — the expression/predicate/property
classes strip their process-local cached hashes on ``__getstate__``.

Exceptions are shipped back as values (pre-tested for picklability, with
a :class:`~repro.errors.ServiceError` fallback) so the parent can
re-raise deterministically — the failure of the *earliest* query in
input order wins, regardless of completion order.

On platforms without ``fork`` the service falls back to its serial path;
see :meth:`OptimizerService.optimize_many`.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Optional, Sequence, Tuple

from repro.errors import ReproError, ServiceError
from repro.search.engine import OptimizationResult

__all__ = ["WorkItem", "WorkOutcome", "fork_available", "run_batch"]

# The optimizer the forked workers inherit.  Set by run_batch() in the
# parent immediately before the pool forks, cleared right after; workers
# read it once per task.  Never populated in worker processes' parents'
# absence — a worker importing this module fresh (spawn) would see None
# and fail loudly, which is why run_batch requires the fork method.
_WORKER_OPTIMIZER: Any = None


@dataclass(frozen=True)
class WorkItem:
    """One query dispatched to the pool (everything here is picklable)."""

    index: int
    query: object
    props: object
    options: Optional[object] = None
    seeds: Tuple = ()


@dataclass(frozen=True)
class WorkOutcome:
    """What a worker sends back: a slim result or a shipped exception."""

    index: int
    result: Optional[OptimizationResult] = None
    error: Optional[BaseException] = None


def _portable_exception(exc: BaseException) -> BaseException:
    """``exc`` if it survives a pickle round-trip, else a ServiceError."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return ServiceError(f"{type(exc).__name__}: {exc}")


def _worker_optimize(item: WorkItem) -> WorkOutcome:
    optimizer = _WORKER_OPTIMIZER
    if optimizer is None:
        return WorkOutcome(
            index=item.index,
            error=ServiceError(
                "worker has no inherited optimizer (pool not forked "
                "from run_batch)"
            ),
        )
    kwargs = {}
    if item.options is not None:
        kwargs["options"] = item.options
    if item.seeds:
        kwargs["preoptimized"] = item.seeds
    try:
        result = optimizer.optimize(item.query, item.props, **kwargs)
    except ReproError as exc:
        return WorkOutcome(index=item.index, error=_portable_exception(exc))
    # Strip the memo and trace: neither is picklable (the context holds
    # resolver closures) nor useful to the parent.
    slim = OptimizationResult(
        plan=result.plan,
        cost=result.cost,
        required=result.required,
        stats=result.stats,
        degraded=result.degraded,
        budget_report=result.budget_report,
    )
    return WorkOutcome(index=item.index, result=slim)


def fork_available() -> bool:
    """True when the ``fork`` start method exists on this platform."""
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


def run_batch(
    optimizer, items: Sequence[WorkItem], max_workers: int
) -> Tuple[WorkOutcome, ...]:
    """Optimize ``items`` on a forked process pool; outcomes in input order.

    The caller guarantees ``fork_available()`` and ``max_workers >= 2``.
    Results arrive in the same order as ``items`` (``Executor.map``
    preserves ordering regardless of completion order), which is what
    makes ``optimize_many`` deterministic.
    """
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    global _WORKER_OPTIMIZER
    context = multiprocessing.get_context("fork")
    workers = min(max_workers, len(items))
    _WORKER_OPTIMIZER = optimizer
    try:
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            return tuple(pool.map(_worker_optimize, items))
    finally:
        _WORKER_OPTIMIZER = None
