"""The optimizer service: cross-query plan caching over any engine.

The paper optimizes each query from scratch — "the memo is
reinitialized for each query being optimized."  Real systems front such
an optimizer with a *plan cache*: the same (or a structurally
equivalent) query should not pay for directed dynamic programming
twice.  :class:`OptimizerService` is that front:

* **exact caching** — a query's canonical fingerprint (normalized
  logical expression + required physical properties + per-table
  statistics versions) indexes a bounded LRU of finished plans;
* **parameterized caching** — queries differing only in literal
  constants share one entry when every replaced comparison lands in the
  same selectivity bucket (:mod:`repro.sql.normalize`); the cached
  template plan is re-bound to the new constants on a hit;
* **invalidation by versioning** — every catalog mutation bumps a
  monotonic statistics version, so stale entries can never be hit (the
  fingerprint changes) and are swept out lazily on the next call;
* **subplan reuse** — optionally, winners harvested from finished
  memo-based runs seed later searches over shared subexpressions
  (:meth:`~repro.search.OptimizationResult.harvest_winners` /
  the engine's ``preoptimized=`` hook).

The service programs against the :class:`~repro.search.Optimizer`
protocol, so it wraps the Volcano engine, the task-driven engine, or
either comparison baseline interchangeably.
"""

from __future__ import annotations

import dataclasses
import inspect
import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple, Union

from repro.algebra.expressions import LogicalExpression
from repro.algebra.plans import PhysicalPlan
from repro.algebra.properties import ANY_PROPS, PhysProps
from repro.catalog.catalog import Catalog
from repro.dynamic import bind_plan
from repro.errors import BudgetExceededError, ServiceError
from repro.executor import ExecutionStats, execute_plan
from repro.feedback import (
    FeedbackPolicy,
    FeedbackReport,
    FeedbackStore,
    RefreshResult,
    observed_report,
    refresh_statistics,
)
from repro.options import (
    KERNEL_TIERS,
    BudgetReport,
    OptionsBase,
    OptionsError,
    QueryHints,
    ResourceBudget,
    check_positive,
)
from repro.search.engine import OptimizationResult, PreoptimizedPlan
from repro.search.promise import PromiseModel
from repro.search.sharing import (
    SharedPlan,
    SharingOptions,
    SharingReport,
    plan_sharing,
)
from repro.service.cache import CacheEntry, CacheStats, PlanCache
from repro.service.fingerprint import Fingerprint, fingerprint, table_dependencies
from repro.service.singleflight import SingleFlight
from repro.sql.normalize import normalize_literals, parameterize_plan
from repro.verify.certificate import PlanCertificate

__all__ = [
    "ServiceOptions",
    "ServedResult",
    "BatchResult",
    "PreparedQuery",
    "ExecutedResult",
    "SubplanLibrary",
    "OptimizerService",
]

#: Anything ``optimize``/``optimize_many``/``prepare`` accepts as a query.
QueryLike = Union[str, LogicalExpression, "PreparedQuery"]


@dataclass(frozen=True, kw_only=True)
class ServiceOptions(OptionsBase):
    """Policy knobs of an :class:`OptimizerService`.

    ``max_entries``
        LRU bound of the plan cache.
    ``parameterized``
        Also cache under the literal-normalized template, so queries
        differing only in constants can share entries.  A parameterized
        hit returns the template's plan re-bound to the new constants —
        plan shape and cost are those of the cached optimization, which
        agree exactly for equality predicates (selectivity is
        value-independent) and approximately, within one selectivity
        bucket, for range predicates.  Disable for byte-exact answers on
        every hit.
    ``selectivity_buckets``
        How finely range-predicate selectivities are quantized; more
        buckets mean fewer cross-literal hits but tighter cost fidelity.
    ``reuse_subplans``
        Harvest memoized winners from finished runs and seed later
        searches that share subexpressions.  Costs stay optimal, but a
        seeded search may break ties between equal-cost plans
        differently than a cold one, so this defaults to off.
    ``max_subplans``
        Bound of the harvested-winner library.
    ``max_seeds_per_query``
        At most this many seeds are planted into any one search.
    ``budget``
        Default :class:`~repro.options.ResourceBudget` applied to every
        engine run through this service (a per-request ``budget=`` on
        :meth:`OptimizerService.optimize` overrides it).  Degraded
        answers are served but never cached or harvested — a budget
        trip must not poison the cache with suboptimal plans.
    ``feedback_policy``
        Drift policy for :meth:`OptimizerService.execute`'s adaptive
        loop.  When set, every instrumented execution's feedback is
        checked against it and drifted tables get their statistics
        refreshed (:func:`repro.feedback.refresh_statistics`) — bumping
        their catalog versions so exactly the affected cache entries go
        stale and the next optimization of those queries is fresh.
        When None (the default), executions still record feedback
        telemetry but statistics are never rewritten.
    ``promise_model``
        A :class:`~repro.search.promise.PromiseModel` folded into every
        engine run through this service (unless the engine's own
        options already carry one).  Pair it with
        :class:`~repro.search.promise.LearnedPromiseModel` to close the
        feedback loop: :meth:`OptimizerService.execute` feeds each
        instrumented execution's report (and the accumulated
        :attr:`feedback` store) into the model, so later
        :meth:`optimize` / :meth:`optimize_many` calls order moves and
        seed branch-and-bound limits from observed behavior.  Under
        exhaustive search served plans are unaffected — the engines'
        winner selection is ordering-independent — only the search
        effort changes.
    ``sharing``
        Multi-query optimization policy for :meth:`optimize_many`
        (:class:`~repro.search.sharing.SharingOptions`).  When enabled
        and the wrapped engine supports batch optimization, a serial
        batch's cache misses are optimized over one shared memo and a
        greedy sharing pass proposes materialized common subplans; see
        :class:`BatchResult.sharing_report`.  Individual answers are
        unaffected — sharing only adds the batch-level report.
    ``kernel``
        A specialized search kernel folded into every engine run through
        this service (unless the engine's own options already pin one):
        a tier string — ``"interpreted"``, ``"specialized"``,
        ``"compiled"`` — or a pre-built
        :class:`~repro.generator.kernel.SearchKernel`; see
        :mod:`repro.generator.kernel`.  Kernels only swap the engine's
        binding enumerators, so served plans, costs, and certificates
        are byte-identical across tiers; engines whose options have no
        kernel field (baselines) are left untouched.
    ``verify_plans``
        Re-check every served plan against its provenance certificate
        with the independent checker (:func:`repro.verify.verify_plan`).
        Fresh answers are verified before caching — a violation is
        still served (the plan may be fine; the *certificate* failed)
        but never cached.  Cache hits are re-verified on every lookup;
        a failing entry is **quarantined**: dropped from the cache,
        counted under ``stats.quarantined``, and the query transparently
        re-optimized.  Multi-query sharing rewrites are verified end to
        end (every rewritten consumer and every materialized producer);
        a violating sharing pass is discarded wholesale, so an
        unverified shared plan is never served — the independent
        per-query answers stand.  Engines that support it are switched
        to certificate recording automatically
        (:attr:`~repro.search.SearchOptions.certificates`); engines
        that emit no certificate are served unverified.  Defaults to
        off: verification re-walks every served plan.
    """

    max_entries: int = 512
    parameterized: bool = True
    selectivity_buckets: int = 10
    reuse_subplans: bool = False
    max_subplans: int = 256
    max_seeds_per_query: int = 32
    budget: Optional[ResourceBudget] = None
    promise_model: Optional[PromiseModel] = None
    feedback_policy: Optional[FeedbackPolicy] = None
    sharing: SharingOptions = field(default_factory=SharingOptions)
    kernel: Optional[object] = None
    verify_plans: bool = False

    def validate(self) -> None:
        """Check field invariants; raise :class:`OptionsError` on failure."""
        check_positive("max_entries", self.max_entries)
        check_positive("selectivity_buckets", self.selectivity_buckets)
        check_positive("max_subplans", self.max_subplans)
        check_positive("max_seeds_per_query", self.max_seeds_per_query)
        kernel = self.kernel
        if isinstance(kernel, str) and kernel not in (
            "interpreted",
            "specialized",
            "compiled",
        ):
            raise OptionsError(
                f"kernel must be one of 'interpreted', 'specialized', "
                f"'compiled', or a SearchKernel; got {kernel!r}"
            )


@dataclass(frozen=True)
class ServedResult:
    """One answer from the service: the plan plus how it was produced.

    ``cached`` is True when the plan came from the cache (``fresh``
    otherwise); ``parameterized`` further marks template hits whose
    literals were re-bound.  ``result`` carries the engine's full
    :class:`~repro.search.OptimizationResult` for fresh answers and is
    None for cache hits (the memo is not retained in the cache).
    ``degraded`` marks a fresh answer produced under a tripped resource
    budget: valid, but not proven optimal, and never cached.

    ``certificate`` is the plan's provenance certificate
    (:class:`~repro.verify.PlanCertificate`) when the engine recorded
    one; ``verified`` is True only when
    :attr:`ServiceOptions.verify_plans` re-checked it through the
    independent checker and it passed *for this answer* (fresh run, or
    this very cache hit).
    """

    plan: PhysicalPlan
    cost: object
    required: PhysProps
    fingerprint: Fingerprint
    cached: bool
    parameterized: bool = False
    degraded: bool = False
    elapsed_seconds: float = 0.0
    result: Optional[OptimizationResult] = None
    certificate: Optional[PlanCertificate] = None
    verified: bool = False

    def __str__(self) -> str:
        source = "cache" if self.cached else "fresh"
        if self.parameterized:
            source += " (parameterized)"
        return f"[{source}] plan cost {self.cost}\n{self.plan.pretty()}"


@dataclass(frozen=True)
class PreparedQuery:
    """A query with its cache keys computed once, reusable across calls.

    Built by :meth:`OptimizerService.prepare` from a SQL string or a
    logical expression; pass it wherever the service accepts a query
    and the fingerprint / literal-normalization work is skipped — as
    long as the catalog's statistics have not moved since preparation
    (``statistics_version`` pins that; a stale prepared query is
    transparently re-keyed, never served wrong answers).
    """

    expression: LogicalExpression
    props: PhysProps
    exact: Fingerprint
    template_key: Optional[Fingerprint]
    normalized: Optional[object]
    statistics_version: int

    def __str__(self) -> str:
        kind = "parameterized" if self.template_key is not None else "exact"
        return f"<prepared {kind} query @v{self.statistics_version}>"


@dataclass(frozen=True)
class BatchResult:
    """Everything :meth:`OptimizerService.optimize_many` learned.

    ``results`` holds one :class:`ServedResult` per input query, in
    input order — exactly what :meth:`~OptimizerService.optimize` would
    have produced for each.  On top of that, the batch-level view:

    ``shared_plans``
        Materialized common subplans the multi-query sharing pass
        chose (empty when sharing is off, the batch ran in parallel,
        or nothing was worth materializing).  Execute them in order
        against one ``intermediates`` store, then the rewritten
        consumer plans in ``sharing_report`` against the same store.
    ``sharing_report``
        The full :class:`~repro.search.sharing.SharingReport` —
        rewritten plans, candidate counts, independent vs. shared
        total cost — or None when the sharing pass did not run.
    ``cache_stats``
        A :class:`~repro.service.cache.CacheStats` *delta*: only this
        batch's lookups, hits, misses, and engine/hit seconds.
    ``budget_report``
        When the whole-batch optimization tripped its resource budget,
        the :class:`~repro.options.BudgetReport` of the trip; the
        batch then degraded to independent per-query optimization.
    ``consumer_certificates`` / ``producer_certificates``
        With :attr:`ServiceOptions.verify_plans` on and a sharing pass
        that verified clean: one certificate per rewritten consumer
        plan in ``sharing_report.plans`` (claims re-aligned to the
        rewrite, scans bound to named intermediates) and one
        ``producer``-kind certificate per materialized shared plan.
        Empty when verification is off, nothing was materialized, or
        the sharing pass was quarantined.

    Deprecated sequence protocol: ``BatchResult`` still iterates,
    indexes, and measures like the ``List[ServedResult]`` this method
    used to return, so existing callers keep working — with a
    :class:`DeprecationWarning`.  Use ``.results`` instead.
    """

    results: Tuple[ServedResult, ...]
    shared_plans: Tuple[SharedPlan, ...] = ()
    sharing_report: Optional[SharingReport] = None
    cache_stats: Optional[CacheStats] = None
    budget_report: Optional[BudgetReport] = None
    consumer_certificates: Tuple[Optional[PlanCertificate], ...] = ()
    producer_certificates: Tuple[Optional[PlanCertificate], ...] = ()

    def _deprecate(self) -> None:
        warnings.warn(
            "treating BatchResult as a List[ServedResult] is deprecated; "
            "use BatchResult.results",
            DeprecationWarning,
            stacklevel=3,
        )

    def __iter__(self) -> Iterator[ServedResult]:
        self._deprecate()
        return iter(self.results)

    def __getitem__(self, index):
        self._deprecate()
        return self.results[index]

    def __len__(self) -> int:
        self._deprecate()
        return len(self.results)

    @property
    def degraded_to_independent(self) -> bool:
        """True when the batch budget tripped and MQO was abandoned."""
        return self.budget_report is not None

    def __str__(self) -> str:
        lines = [f"batch of {len(self.results)} queries"]
        if self.sharing_report is not None:
            lines.append(str(self.sharing_report))
        if self.budget_report is not None:
            lines.append("degraded to independent plans (budget tripped)")
        return "\n".join(lines)


@dataclass(frozen=True)
class ExecutedResult:
    """One optimize–execute round trip through the service.

    ``served`` is how the plan was obtained (cache hit, fresh,
    degraded); ``rows`` and ``stats`` are the execution's output and
    counters.  When the run was instrumented, ``report`` joins the
    optimizer's estimates with the observed cardinalities and
    ``refresh`` records any statistics refresh the feedback triggered
    (None when no drift policy is active or nothing drifted).
    """

    served: ServedResult
    rows: List[dict]
    stats: ExecutionStats
    report: Optional[FeedbackReport] = None
    refresh: Optional[RefreshResult] = None

    @property
    def plan(self) -> PhysicalPlan:
        return self.served.plan

    @property
    def refreshed(self) -> bool:
        """Whether this execution's feedback triggered a statistics refresh."""
        return self.refresh is not None and self.refresh.did_refresh

    @property
    def max_q_error(self) -> float:
        """The report's worst per-operator q-error (1.0 uninstrumented)."""
        return self.report.max_q_error if self.report is not None else 1.0


@dataclass
class SubplanLibrary:
    """Harvested winners, keyed by (expression, goal), version-checked.

    The persistence half of cross-query memo reuse: winners drained from
    finished runs via
    :meth:`~repro.search.OptimizationResult.harvest_winners` live here
    until their tables' statistics move, and are re-planted (as
    ``preoptimized=`` seeds) into searches whose queries read a
    superset of their tables.
    """

    max_entries: int = 256

    def __post_init__(self):
        if self.max_entries <= 0:
            raise ServiceError("max_entries must be positive")
        self._seeds: "OrderedDict[Tuple, Tuple[PreoptimizedPlan, Tuple]]" = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._seeds)

    def add(self, seed: PreoptimizedPlan, catalog: Catalog) -> None:
        """Store a harvested winner under the current table versions."""
        tables = table_dependencies(seed.expression, catalog)
        versions = tuple(
            (name, catalog.table_version(name)) for name in tables
        )
        key = (seed.expression, seed.required)
        if key in self._seeds:
            self._seeds.move_to_end(key)
        self._seeds[key] = (seed, versions)
        while len(self._seeds) > self.max_entries:
            self._seeds.popitem(last=False)

    def seeds_for(
        self,
        query: LogicalExpression,
        catalog: Catalog,
        limit: Optional[int] = None,
    ) -> List[PreoptimizedPlan]:
        """Valid seeds whose tables the query also reads, freshest first."""
        query_tables = set(table_dependencies(query, catalog))
        matched: List[PreoptimizedPlan] = []
        stale = []
        for key, (seed, versions) in reversed(self._seeds.items()):
            current = all(
                name in catalog and catalog.table_version(name) == version
                for name, version in versions
            )
            if not current:
                stale.append(key)
                continue
            if not versions or not {name for name, _ in versions} <= query_tables:
                continue
            matched.append(seed)
            if limit is not None and len(matched) >= limit:
                break
        for key in stale:
            del self._seeds[key]
        return matched

    def clear(self) -> None:
        """Drop every stored seed."""
        self._seeds.clear()


class OptimizerService:
    """A caching front over any :class:`~repro.search.Optimizer`.

    >>> service = OptimizerService(generate_optimizer(model, catalog))
    >>> first = service.optimize(query)        # cold: runs the engine
    >>> again = service.optimize(query)        # warm: served from cache
    >>> again.cached and again.plan == first.plan
    True
    """

    def __init__(
        self,
        optimizer,
        options: Optional[ServiceOptions] = None,
    ):
        self.optimizer = optimizer
        self.catalog: Catalog = optimizer.catalog
        self.options = options or ServiceOptions()
        self.cache = PlanCache(max_entries=self.options.max_entries)
        self.subplans = SubplanLibrary(max_entries=self.options.max_subplans)
        feedback_buckets = (
            self.options.feedback_policy.buckets
            if self.options.feedback_policy is not None
            else self.options.selectivity_buckets
        )
        self.feedback = FeedbackStore(buckets=feedback_buckets)
        # Per-fingerprint deduplication of concurrent cold optimizations:
        # when the service is shared across threads (repro.server), one
        # engine run per cold key, every concurrent requester shares it.
        self.single_flight: SingleFlight[ServedResult] = SingleFlight()
        self._seen_version = self.catalog.statistics_version
        parameters = inspect.signature(optimizer.optimize).parameters
        self._engine_seeds = "preoptimized" in parameters

    # ------------------------------------------------------------------

    @property
    def stats(self) -> CacheStats:
        """The cache's operation counters."""
        return self.cache.stats

    def prepare(
        self,
        query: QueryLike,
        props: Optional[PhysProps] = None,
    ) -> PreparedQuery:
        """Compute a query's cache keys once, for reuse across calls.

        ``query`` may be a SQL string (translated through
        :class:`~repro.sql.translator.Translator`), a logical
        expression, or an existing :class:`PreparedQuery` (re-prepared
        against the current statistics).  The returned value is valid
        until the catalog's statistics move; passing a stale one to
        :meth:`optimize` is safe — it is re-keyed transparently.
        """
        expression, props, _ = self._resolve(query, props)
        exact, template_key, normalized = self._keys_for(expression, props)
        return PreparedQuery(
            expression=expression,
            props=props,
            exact=exact,
            template_key=template_key,
            normalized=normalized,
            statistics_version=self.catalog.statistics_version,
        )

    def _resolve(
        self,
        query: QueryLike,
        props: Optional[PhysProps],
    ) -> Tuple[
        LogicalExpression,
        PhysProps,
        Optional[Tuple[Fingerprint, Optional[Fingerprint], Optional[object]]],
    ]:
        """Coerce any accepted query form to (expression, props, keys).

        ``keys`` is the precomputed ``(exact, template, normalized)``
        triple when a fresh :class:`PreparedQuery` supplied it, else
        None (computed lazily by the caller).  A prepared query whose
        ``statistics_version`` is stale — or that is being re-required
        under different ``props`` — falls back to recomputation.
        """
        if isinstance(query, PreparedQuery):
            if props is not None and props != query.props:
                return query.expression, props, None
            if query.statistics_version == self.catalog.statistics_version:
                return query.expression, query.props, (
                    query.exact,
                    query.template_key,
                    query.normalized,
                )
            return query.expression, query.props, None
        if isinstance(query, str):
            from repro.sql.translator import Translator

            translation = Translator(self.catalog).translate(query)
            if props is None:
                props = translation.required
            return (
                translation.expression,
                props if props is not None else self._default_props(),
                None,
            )
        return (
            query,
            props if props is not None else self._default_props(),
            None,
        )

    def optimize(
        self,
        query: QueryLike,
        props: Optional[PhysProps] = None,
        *,
        budget: Optional[ResourceBudget] = None,
        hints: Optional[QueryHints] = None,
    ) -> ServedResult:
        """Serve the cheapest plan for ``query``, from cache when possible.

        ``query`` may be a logical expression, a SQL string, or a
        :class:`PreparedQuery` from :meth:`prepare` (which skips the
        fingerprinting work when still fresh).

        Lookup order: exact fingerprint first (byte-identical answer),
        then — when enabled — the literal-normalized template at the
        query's selectivity bucket (plan re-bound to these literals).
        A miss runs the wrapped engine and caches both forms.

        ``budget`` bounds this one engine run (overriding the service's
        default ``options.budget``).  A degraded answer — the engine's
        budget tripped and it fell back to its anytime plan — is served
        with ``degraded=True`` but neither cached nor harvested, and is
        counted in ``stats.degraded``.

        ``hints`` are per-request :class:`~repro.options.QueryHints`
        (kernel tier, promise disposition, a hint-level budget) folded
        into this one engine run; see the class docs.  An explicit
        ``budget=`` argument outranks ``hints.budget``.

        Concurrent misses of the same fingerprint are **single-flight**
        deduplicated: the first caller runs the engine, every caller
        that arrives while that run is in flight waits and shares its
        answer (counted under ``stats.shared_waits`` and served with
        ``cached=True`` — from the requester's side it is
        indistinguishable from a warm hit).  Followers share the
        leader's answer as-is, so a follower's own ``budget``/``hints``
        do not shape the shared plan.
        """
        expression, props, keys = self._resolve(query, props)
        started = time.perf_counter()
        self._sweep_if_stale()

        if keys is None:
            served = self._lookup(expression, props, started)
            if served is not None:
                return served
            keys = self._keys_for(expression, props)
        else:
            served = self._lookup_with_keys(keys, started, expression)
            if served is not None:
                return served

        exact, template_key, normalized = keys
        if budget is None and hints is not None:
            budget = hints.budget

        def miss() -> ServedResult:
            # Late-leader re-check: this thread's lookup missed, but
            # another flight may have populated the entry before we won
            # the flight.  peek() is uncounted, so the common cold path
            # keeps its exact historical counter trail.
            entry = self.cache.peek(exact)
            if entry is not None:
                elapsed = time.perf_counter() - started
                self.cache.stats.bump(lookups=1, hits=1, hit_seconds=elapsed)
                return ServedResult(
                    plan=entry.plan,
                    cost=entry.cost,
                    required=entry.required,
                    fingerprint=exact,
                    cached=True,
                    elapsed_seconds=elapsed,
                    certificate=entry.certificate,
                )
            result = self._run_engine(expression, props, budget, hints)
            return self._serve_fresh(
                exact, template_key, normalized, result, started, expression
            )

        served, leader = self.single_flight.do(exact.digest, miss)
        if not leader:
            # Shared wait: another request's engine run answered this
            # one.  Byte-identical plan, no second optimization.
            self.cache.stats.bump(shared_waits=1)
            served = dataclasses.replace(
                served,
                cached=not served.degraded,
                elapsed_seconds=time.perf_counter() - started,
                result=None,
            )
        return served

    def _lookup(
        self,
        query: LogicalExpression,
        props: PhysProps,
        started: float,
    ) -> Optional[ServedResult]:
        """The cache-only half of :meth:`optimize`: a hit, or None.

        Hit latency is *service-side* (the lookup cost paid now), never
        the original optimization's elapsed time; it accumulates under
        ``stats.hit_seconds``.
        """
        exact = fingerprint(query, props, self.catalog)
        served, quarantined = self._hit_exact(exact, started, query)
        if served is not None:
            return served
        if self.options.parameterized:
            normalized = normalize_literals(
                query, self.catalog, buckets=self.options.selectivity_buckets
            )
            if normalized.is_parameterized:
                template_key = fingerprint(
                    normalized.template,
                    props,
                    self.catalog,
                    bucket_key=tuple(
                        (op, bucket) for _, op, bucket in normalized.bucket_key
                    ),
                )
                if quarantined:
                    # The template entry came from the same (now
                    # distrusted) optimization as the quarantined exact
                    # entry: drop it too, and report a miss.
                    self.cache.remove(template_key)
                    return None
                return self._hit_template(template_key, normalized, started)
        return None

    def _lookup_with_keys(
        self,
        keys: Tuple[Fingerprint, Optional[Fingerprint], Optional[object]],
        started: float,
        expression: Optional[LogicalExpression] = None,
    ) -> Optional[ServedResult]:
        """:meth:`_lookup` over precomputed (prepared) cache keys."""
        exact, template_key, normalized = keys
        served, quarantined = self._hit_exact(exact, started, expression)
        if served is not None:
            return served
        if template_key is not None and normalized is not None:
            if quarantined:
                self.cache.remove(template_key)
                return None
            return self._hit_template(template_key, normalized, started)
        return None

    def _hit_exact(
        self,
        exact: Fingerprint,
        started: float,
        expression: Optional[LogicalExpression] = None,
    ) -> Tuple[Optional[ServedResult], bool]:
        """An exact-fingerprint hit: ``(served, quarantined)``.

        ``quarantined`` is True when the entry was present but its
        certificate failed re-verification — the entry has been dropped
        and the caller must also suppress (and drop) the sibling
        template entry rather than fall back to it.
        """
        entry = self.cache.get(exact)
        if entry is None:
            return None, False
        verified = False
        if (
            self.options.verify_plans
            and entry.certificate is not None
            and expression is not None
        ):
            ok = self._verify(expression, entry.plan, entry.certificate)
            if ok is False:
                # Quarantine: the cached plan no longer checks out
                # against its own derivation certificate.  Drop the
                # entry and report a miss, so the caller falls through
                # to a fresh (verified) optimization.
                self.cache.remove(exact)
                self.cache.stats.bump(verify_violations=1, quarantined=1)
                return None, True
            if ok:
                self.cache.stats.bump(verified_hits=1)
                verified = True
        elapsed = time.perf_counter() - started
        self.cache.stats.bump(hit_seconds=elapsed)
        return (
            ServedResult(
                plan=entry.plan,
                cost=entry.cost,
                required=entry.required,
                fingerprint=exact,
                cached=True,
                elapsed_seconds=elapsed,
                certificate=entry.certificate,
                verified=verified,
            ),
            False,
        )

    def _hit_template(
        self, template_key: Fingerprint, normalized, started: float
    ) -> Optional[ServedResult]:
        entry = self.cache.get(template_key)
        if entry is None:
            return None
        plan = bind_plan(entry.plan, normalized.bindings)
        elapsed = time.perf_counter() - started
        self.cache.stats.bump(hit_seconds=elapsed)
        return ServedResult(
            plan=plan,
            cost=entry.cost,
            required=entry.required,
            fingerprint=template_key,
            cached=True,
            parameterized=True,
            elapsed_seconds=elapsed,
        )

    def _keys_for(
        self, query: LogicalExpression, props: PhysProps
    ) -> Tuple[Fingerprint, Optional[Fingerprint], Optional[object]]:
        """The exact and (when enabled) template cache keys of a query."""
        exact = fingerprint(query, props, self.catalog)
        normalized = None
        template_key = None
        if self.options.parameterized:
            normalized = normalize_literals(
                query, self.catalog, buckets=self.options.selectivity_buckets
            )
            if normalized.is_parameterized:
                template_key = fingerprint(
                    normalized.template,
                    props,
                    self.catalog,
                    bucket_key=tuple(
                        (op, bucket) for _, op, bucket in normalized.bucket_key
                    ),
                )
            else:
                normalized = None
        return exact, template_key, normalized

    def _serve_fresh(
        self,
        exact: Fingerprint,
        template_key: Optional[Fingerprint],
        normalized,
        result: OptimizationResult,
        started: float,
        expression: Optional[LogicalExpression] = None,
    ) -> ServedResult:
        """Account, cache, and wrap one fresh engine answer."""
        degraded = bool(getattr(result, "degraded", False))
        certificate = getattr(result, "certificate", None)
        ok: Optional[bool] = None
        if self.options.verify_plans and expression is not None:
            ok = self._verify(expression, result.plan, certificate)
            if ok is False:
                self.cache.stats.bump(verify_violations=1)
        if result.stats is not None:
            self.cache.stats.bump(engine_seconds=result.stats.elapsed_seconds)
        if degraded:
            self.cache.stats.bump(degraded=1)
        elif ok is False:
            # An answer whose own certificate fails the checker is
            # served (the plan may still be fine) but never cached —
            # the cache must hold only re-verifiable entries.
            pass
        else:
            self._store(exact, template_key, normalized, result, None)
            self._harvest(result)
        return ServedResult(
            plan=result.plan,
            cost=result.cost,
            required=result.required,
            fingerprint=exact,
            cached=False,
            degraded=degraded,
            elapsed_seconds=time.perf_counter() - started,
            result=result,
            certificate=certificate,
            verified=bool(ok),
        )

    def verify_served(
        self,
        query: LogicalExpression,
        plan: PhysicalPlan,
        certificate: Optional[PlanCertificate],
    ) -> Optional[bool]:
        """Re-check a plan against its certificate; None when impossible.

        The public face of the independent checker for callers *above*
        the service — the server uses it to vet a plan before pinning
        it.  Semantics are exactly :attr:`ServiceOptions.verify_plans`'s
        per-answer check: True (verified), False (violation), or None
        (no model spec or no certificate — cannot be checked).
        """
        return self._verify(query, plan, certificate)

    def _verify(
        self,
        query: LogicalExpression,
        plan: PhysicalPlan,
        certificate: Optional[PlanCertificate],
    ) -> Optional[bool]:
        """Run the independent checker; None when it cannot run.

        Verification needs a model specification and a certificate;
        engines without either (or runs with recording off) are served
        unverified rather than rejected.
        """
        spec = getattr(self.optimizer, "spec", None)
        if spec is None or certificate is None:
            return None
        from repro.verify import verify_plan

        report = verify_plan(
            spec,
            query,
            plan,
            certificate,
            catalog=self.catalog,
            estimator=getattr(self.optimizer, "estimator", None),
        )
        return report.ok

    def optimize_many(
        self,
        queries,
        props: Optional[PhysProps] = None,
        *,
        max_workers: Optional[int] = None,
        deadline_seconds: Optional[float] = None,
        budget: Optional[ResourceBudget] = None,
    ) -> "BatchResult":
        """Serve a batch of queries, sharing work across them.

        Returns a :class:`BatchResult`: per-query answers in input
        order (each exactly what :meth:`optimize` would have produced),
        plus the batch-level sharing report and cache-stats delta.  It
        still iterates and indexes like the former
        ``List[ServedResult]`` — with a DeprecationWarning.

        The warm plan cache is consulted *before* any dispatch, and
        duplicate queries within the batch are optimized once — keyed
        on the cache fingerprint, so with parameterized caching enabled
        two queries differing only in same-bucket literals also count
        as duplicates.  Fresh answers are cached so later batches (and
        later duplicates) hit.

        When ``options.sharing`` is enabled (the default) and the batch
        runs serially with more than one cache miss, the misses are
        optimized over **one shared memo** (the wrapped engine's
        ``optimize_batch``), so cross-query common subexpressions
        collide; a greedy sharing pass (Volcano-SH style) then proposes
        materialized common subplans — see
        :attr:`BatchResult.sharing_report`.  Each query's own served
        plan is unchanged; the rewritten consumer plans live only in
        the report.  A budget trip during the shared run degrades the
        batch to independent per-query optimization (recorded in
        :attr:`BatchResult.budget_report`).

        ``max_workers`` > 1 fans the cache misses out to a pool of
        forked worker processes (the optimizer is inherited by memory
        image; only picklable data crosses the pipe — see
        :mod:`repro.service.parallel`); the sharing pass is skipped.
        With ``max_workers`` of None, 0, or 1 — or on platforms without
        the ``fork`` start method, or when at most one query misses —
        the batch runs serially in this process.  Either way the
        per-query answers are identical; each search is deterministic.

        ``deadline_seconds`` is a *batch* deadline: the shared run gets
        it whole; on the independent path it is split evenly into
        per-query wall-clock budgets over the cache misses, composing
        with ``budget`` (or the service default) by taking the tighter
        deadline.  Per-query budget semantics are unchanged: a query
        whose budget trips degrades (anytime plan, flagged
        ``degraded=True``) and is served but never cached.

        Worker failures re-raise deterministically: the earliest failed
        query in input order wins, regardless of completion order.
        """
        from repro.service import parallel as parallel_mod

        queries = list(queries)
        stats_before = self._stats_snapshot()
        resolved = [self._resolve(query, props) for query in queries]
        self._sweep_if_stale()

        results: List[Optional[ServedResult]] = [None] * len(queries)
        pending: List[int] = []
        for index, (expression, qprops, keys) in enumerate(resolved):
            started = time.perf_counter()
            if keys is None:
                served = self._lookup(expression, qprops, started)
            else:
                served = self._lookup_with_keys(keys, started, expression)
            if served is not None:
                results[index] = served
            else:
                pending.append(index)

        # Duplicate queries in one batch are optimized once; the rest
        # are served from the cache the first occurrence populates.
        # Dedup keys on the *cache* fingerprint — the template digest
        # when the query parameterizes — so same-bucket literal
        # variants dispatch once and the rest re-bind from the cache.
        dispatch: List[int] = []
        seen_digests: set = set()
        for index in pending:
            expression, qprops, keys = resolved[index]
            if keys is None:
                keys = self._keys_for(expression, qprops)
                resolved[index] = (expression, qprops, keys)
            exact, template_key, _ = keys
            digest = (
                template_key.digest if template_key is not None else exact.digest
            )
            if digest not in seen_digests:
                seen_digests.add(digest)
                dispatch.append(index)

        per_query_budget = self._split_deadline(
            deadline_seconds, len(dispatch), budget
        )
        workers = max_workers or 0
        parallel = (
            workers > 1 and len(dispatch) > 1 and parallel_mod.fork_available()
        )
        sharing_report: Optional[SharingReport] = None
        batch_budget_report: Optional[BudgetReport] = None
        consumer_certs: Tuple[Optional[PlanCertificate], ...] = ()
        producer_certs: Tuple[Optional[PlanCertificate], ...] = ()
        use_sharing = (
            not parallel
            and len(dispatch) > 1
            and self.options.sharing.enabled
            and hasattr(self.optimizer, "optimize_batch")
            and len({resolved[index][1] for index in dispatch}) == 1
        )
        if use_sharing:
            (
                sharing_report,
                batch_budget_report,
                consumer_certs,
                producer_certs,
            ) = self._optimize_batch_shared(
                resolved, dispatch, deadline_seconds, budget, results
            )
        if sharing_report is None:
            if parallel:
                self._optimize_batch_parallel(
                    resolved, dispatch, per_query_budget, workers, results
                )
            else:
                for index in dispatch:
                    if results[index] is None:
                        expression, qprops, _ = resolved[index]
                        results[index] = self.optimize(
                            expression, qprops, budget=per_query_budget
                        )
        # Second pass: batch duplicates (and parallel-path stragglers)
        # now hit the warm cache; degraded answers were never cached, so
        # their duplicates re-run serially with the same budget —
        # preserving single-query semantics exactly.
        for index in pending:
            if results[index] is None:
                expression, qprops, _ = resolved[index]
                results[index] = self.optimize(
                    expression, qprops, budget=per_query_budget
                )
        return BatchResult(
            results=tuple(results),  # type: ignore[arg-type]
            shared_plans=(
                sharing_report.shared_plans if sharing_report is not None else ()
            ),
            sharing_report=sharing_report,
            cache_stats=self._stats_delta(stats_before),
            budget_report=batch_budget_report,
            consumer_certificates=consumer_certs,
            producer_certificates=producer_certs,
        )

    def _optimize_batch_shared(
        self,
        resolved,
        dispatch: List[int],
        deadline_seconds: Optional[float],
        budget: Optional[ResourceBudget],
        results: List[Optional[ServedResult]],
    ) -> Tuple[
        Optional[SharingReport],
        Optional[BudgetReport],
        Tuple[Optional[PlanCertificate], ...],
        Tuple[Optional[PlanCertificate], ...],
    ]:
        """Optimize the cache misses over one shared memo; fill ``results``.

        Returns ``(report, None, consumers, producers)`` on success —
        every dispatched index served, cached, and harvested, with the
        sharing pass's consumer/producer certificates when verification
        is on and checked out — or ``(None, budget_report, (), ())``
        when the batch-wide budget tripped, leaving ``results``
        untouched so the caller can fall back to independent per-query
        optimization with split budgets.
        """
        expressions = [resolved[index][0] for index in dispatch]
        props = resolved[dispatch[0]][1]
        batch_budget = budget if budget is not None else self.options.budget
        if deadline_seconds is not None:
            if batch_budget is None:
                batch_budget = ResourceBudget(deadline_seconds=deadline_seconds)
            elif batch_budget.deadline_seconds is not None:
                batch_budget = batch_budget.replace(
                    deadline_seconds=min(
                        deadline_seconds, batch_budget.deadline_seconds
                    )
                )
            else:
                batch_budget = batch_budget.replace(
                    deadline_seconds=deadline_seconds
                )
        kwargs = {}
        options = self._engine_options(batch_budget)
        if options is not None:
            kwargs["options"] = options
        started = time.perf_counter()
        try:
            outcomes = self.optimizer.optimize_batch(
                expressions, props, **kwargs
            )
        except BudgetExceededError as error:
            return None, error.report, (), ()
        # All outcomes share one SearchStats: account the engine time
        # exactly once, not once per result.
        if outcomes and outcomes[0].stats is not None:
            self.cache.stats.bump(engine_seconds=outcomes[0].stats.elapsed_seconds)
        elapsed = time.perf_counter() - started
        for index, result in zip(dispatch, outcomes):
            exact, template_key, normalized = resolved[index][2]
            certificate = getattr(result, "certificate", None)
            ok: Optional[bool] = None
            if self.options.verify_plans:
                ok = self._verify(resolved[index][0], result.plan, certificate)
                if ok is False:
                    self.cache.stats.bump(verify_violations=1)
            if ok is not False:
                self._store(exact, template_key, normalized, result, None)
                self._harvest(result)
            results[index] = ServedResult(
                plan=result.plan,
                cost=result.cost,
                required=result.required,
                fingerprint=exact,
                cached=False,
                elapsed_seconds=elapsed,
                result=result,
                certificate=certificate,
                verified=bool(ok),
            )
        spec = getattr(self.optimizer, "spec", None)
        if spec is None:
            report = SharingReport(plans=tuple(r.plan for r in outcomes))
            return report, None, (), ()
        estimator = getattr(self.optimizer, "estimator", None)
        certifier = None
        local_costs = None
        if self.options.verify_plans:
            certifier = self._sharing_certifier(spec, estimator, outcomes)
            if certifier is not None:
                local_costs = certifier.local_costs
        report = plan_sharing(
            outcomes,
            spec,
            self.catalog,
            options=self.options.sharing,
            estimator=estimator,
            local_costs=local_costs,
        )
        consumer_certs: Tuple[Optional[PlanCertificate], ...] = ()
        producer_certs: Tuple[Optional[PlanCertificate], ...] = ()
        if certifier is not None and report.shared_plans:
            consumers, producers = self._verify_sharing(
                certifier, report, outcomes, expressions
            )
            if consumers is None:
                # Quarantine the whole sharing pass: an unverified
                # shared rewrite is never surfaced.  The independent
                # (already verified) per-query answers stand.
                report = SharingReport(plans=tuple(r.plan for r in outcomes))
            else:
                consumer_certs, producer_certs = consumers, producers
        return report, None, consumer_certs, producer_certs

    def _sharing_certifier(self, spec, estimator, outcomes):
        """A SharingCertifier fed every pre-sharing plan, or None.

        Returns None when any outcome lacks a usable certificate — the
        sharing pass then runs uncertified (and its rewrites are not
        surfaced as verified).
        """
        from repro.model.context import OptimizerContext
        from repro.search.certify import SharingCertifier

        context = OptimizerContext(spec, self.catalog, estimator)
        certifier = SharingCertifier(spec, context)
        for result in outcomes:
            if not certifier.add_result(
                result.plan, getattr(result, "certificate", None)
            ):
                return None
        return certifier

    def _verify_sharing(
        self, certifier, report: SharingReport, outcomes, expressions
    ):
        """Certify and re-check every sharing rewrite; quarantine on failure.

        Returns ``(consumer_certs, producer_certs)`` when every
        rewritten consumer plan and every materialized producer passed
        the independent checker, else ``(None, None)`` after counting
        the violation and the quarantine.
        """
        consumers, producers = certifier.certify(
            report,
            [result.plan for result in outcomes],
            [getattr(result, "certificate", None) for result in outcomes],
        )
        clean = True
        for expression, plan, certificate in zip(
            expressions, report.plans, consumers
        ):
            if (
                certificate is None
                or self._verify(expression, plan, certificate) is not True
            ):
                clean = False
                break
        if clean:
            for shared, certificate in zip(report.shared_plans, producers):
                if (
                    certificate is None
                    or self._verify(certificate.source, shared.plan, certificate)
                    is not True
                ):
                    clean = False
                    break
        if not clean:
            self.cache.stats.bump(verify_violations=1, quarantined=1)
            return None, None
        return tuple(consumers), tuple(producers)

    def _stats_snapshot(self) -> dict:
        return self.cache.stats.counters()

    def _stats_delta(self, before: dict) -> CacheStats:
        after = self.cache.stats.counters()
        return CacheStats(
            **{name: after[name] - value for name, value in before.items()}
        )

    def _split_deadline(
        self,
        deadline_seconds: Optional[float],
        dispatch_count: int,
        budget: Optional[ResourceBudget],
    ) -> Optional[ResourceBudget]:
        """Fold a batch deadline into the per-query resource budget."""
        base = budget if budget is not None else self.options.budget
        if deadline_seconds is None or dispatch_count == 0:
            return base
        share = deadline_seconds / dispatch_count
        if base is None:
            return ResourceBudget(deadline_seconds=share)
        if base.deadline_seconds is not None:
            share = min(share, base.deadline_seconds)
        return base.replace(deadline_seconds=share)

    def _optimize_batch_parallel(
        self,
        resolved,
        dispatch: List[int],
        per_query_budget: Optional[ResourceBudget],
        max_workers: int,
        results: List[Optional[ServedResult]],
    ) -> None:
        """Fan cache misses out to forked workers; fill ``results``."""
        from repro.service import parallel as parallel_mod

        options = None
        if per_query_budget is not None:
            options = self.optimizer.options.replace(budget=per_query_budget)
        items = []
        for index in dispatch:
            expression, qprops, _ = resolved[index]
            seeds: Tuple = ()
            if self.options.reuse_subplans and self._engine_seeds:
                seeds = tuple(
                    self.subplans.seeds_for(
                        expression,
                        self.catalog,
                        limit=self.options.max_seeds_per_query,
                    )
                )
            items.append(
                parallel_mod.WorkItem(
                    index=index,
                    query=expression,
                    props=qprops,
                    options=options,
                    seeds=seeds,
                )
            )
        outcomes = parallel_mod.run_batch(self.optimizer, items, max_workers)
        failure: Optional[BaseException] = None
        for outcome in outcomes:  # already in input order
            if outcome.error is not None:
                if failure is None:
                    failure = outcome.error
                continue
            started = time.perf_counter()
            result = outcome.result
            assert result is not None  # no error => a result was shipped
            exact, template_key, normalized = resolved[outcome.index][2]
            results[outcome.index] = self._serve_fresh(
                exact,
                template_key,
                normalized,
                result,
                started,
                resolved[outcome.index][0],
            )
        if failure is not None:
            raise failure

    def optimize_sql(self, text: str) -> ServedResult:
        """Translate a SQL statement and serve its plan."""
        from repro.sql.translator import Translator

        translation = Translator(self.catalog).translate(text)
        return self.optimize(translation.expression, translation.required)

    def execute(
        self,
        query: LogicalExpression,
        props: Optional[PhysProps] = None,
        *,
        budget: Optional[ResourceBudget] = None,
        instrument: bool = True,
        policy: Optional[FeedbackPolicy] = None,
    ) -> ExecutedResult:
        """Optimize ``query``, run its plan, and close the feedback loop.

        The adaptive path of the service: the plan (cached or fresh) is
        executed with per-operator instrumentation, the observed
        cardinalities are joined against the optimizer's estimates into
        a :class:`~repro.feedback.FeedbackReport`, and the report is
        folded into :attr:`feedback`.  When a drift policy is active
        (``policy`` argument, or ``options.feedback_policy``) and the
        accumulated feedback crosses its q-error threshold, the drifted
        tables' statistics are refreshed through the catalog's
        versioned API — which invalidates exactly the cache entries
        reading those tables, so the *next* optimization of an affected
        query transparently re-plans against fresh statistics while
        every other cached plan stays warm.

        Degraded plans (budget-tripped optimizations) record feedback
        telemetry but never trigger a refresh: a knowingly cut-short
        plan is not evidence that the statistics are wrong.  With
        ``instrument=False`` the run is observation-free — no per-node
        counters, no report, no refresh.
        """
        served = self.optimize(query, props, budget=budget)
        stats = ExecutionStats()
        rows = execute_plan(
            served.plan, self.catalog, stats, instrument=instrument
        )
        report: Optional[FeedbackReport] = None
        refresh: Optional[RefreshResult] = None
        spec = getattr(self.optimizer, "spec", None)
        if instrument and spec is not None:
            report = observed_report(
                served.plan,
                stats,
                self.catalog,
                spec,
                degraded=served.degraded,
            )
            self.feedback.record(report)
            model = self.options.promise_model
            if model is None:
                model = getattr(self.optimizer.options, "promise_model", None)
            observe = getattr(model, "observe", None)
            if callable(observe):
                # Close the loop: a learned promise model folds this
                # execution's report (and the store's aggregates) into
                # its priors, steering later optimize() calls.
                observe(report, self.feedback)
            policy = policy if policy is not None else self.options.feedback_policy
            if policy is not None and not served.degraded:
                refresh = refresh_statistics(
                    self.catalog, self.feedback, policy=policy
                )
        return ExecutedResult(
            served=served,
            rows=rows,
            stats=stats,
            report=report,
            refresh=refresh,
        )

    # ------------------------------------------------------------------

    def invalidate(self, table: Optional[str] = None) -> int:
        """Drop cached plans: those reading ``table``, or all stale ones."""
        if table is not None:
            self.subplans.clear()
            return self.cache.invalidate_table(table)
        dropped = self.cache.purge_stale(self.catalog)
        self._seen_version = self.catalog.statistics_version
        return dropped

    def clear(self) -> None:
        """Drop every cached plan and harvested subplan."""
        self.cache.clear()
        self.subplans.clear()

    def __len__(self) -> int:
        return len(self.cache)

    # ------------------------------------------------------------------

    def _default_props(self) -> PhysProps:
        spec = getattr(self.optimizer, "spec", None)
        return getattr(spec, "any_props", ANY_PROPS)

    def _sweep_if_stale(self) -> None:
        """Lazily drop entries invalidated by catalog mutations.

        Cheap in the steady state: a single version comparison.  Only
        when the catalog has actually moved does the sweep walk the
        cache, and it drops exactly the entries whose tables changed.
        """
        version = self.catalog.statistics_version
        if version != self._seen_version:
            self.cache.purge_stale(self.catalog)
            self._seen_version = version

    def _run_engine(
        self,
        query: LogicalExpression,
        props: PhysProps,
        budget: Optional[ResourceBudget] = None,
        hints: Optional[QueryHints] = None,
    ) -> OptimizationResult:
        budget = budget if budget is not None else self.options.budget
        kwargs = {}
        options = self._engine_options(budget, hints)
        if options is not None:
            kwargs["options"] = options
        if self.options.reuse_subplans and self._engine_seeds:
            seeds = self.subplans.seeds_for(
                query, self.catalog, limit=self.options.max_seeds_per_query
            )
            if seeds:
                return self.optimizer.optimize(
                    query, props, preoptimized=seeds, **kwargs
                )
        return self.optimizer.optimize(query, props, **kwargs)

    def _engine_options(
        self,
        budget: Optional[ResourceBudget],
        hints: Optional[QueryHints] = None,
    ):
        """The wrapped engine's options with service overrides folded in.

        Returns None when nothing needs overriding (the common case, so
        the engine runs with exactly the options it was built with).
        Every engine options class carries a ``budget`` field;
        certificate recording is switched on only for engines whose
        options expose it.

        Per-request ``hints`` outrank both the service defaults and the
        engine's construction-time options — an explicit per-query
        kernel or promise hint is the caller steering *this* run — but
        a hint naming a knob the engine's options class does not carry
        (baselines) is silently skipped.
        """
        options = self.optimizer.options
        changed = False
        if budget is not None:
            options = options.replace(budget=budget)
            changed = True
        model = self.options.promise_model
        if model is not None and getattr(options, "promise_model", model) is None:
            # Fold the service's model in — unless the engine's options
            # already pin one (engine-level wins), or the engine's
            # options class has no such field (baselines).
            options = options.replace(promise_model=model)
            changed = True
        kernel = self.options.kernel
        if kernel is not None and getattr(options, "kernel", kernel) is None:
            # Same folding rule as promise_model: engine-level wins, and
            # baseline engines without a kernel field are left alone.
            options = options.replace(kernel=kernel)
            changed = True
        if hints is not None:
            if hints.kernel is not None and hasattr(options, "kernel"):
                options = options.replace(kernel=hints.kernel)
                changed = True
            if hints.promise is not None and hasattr(options, "promise_model"):
                if hints.promise == "static":
                    from repro.search.promise import STATIC_PROMISE

                    options = options.replace(promise_model=STATIC_PROMISE)
                    changed = True
                elif hints.promise == "none":
                    if getattr(options, "promise_model") is not None:
                        options = options.replace(promise_model=None)
                        changed = True
                # "service": the explicit default — folding above stands.
        if (
            self.options.verify_plans
            and getattr(options, "certificates", None) is False
        ):
            options = options.replace(certificates=True)
            changed = True
        return options if changed else None

    def _store(
        self,
        exact: Fingerprint,
        template_key: Optional[Fingerprint],
        normalized,
        result: OptimizationResult,
        props: Optional[PhysProps] = None,
    ) -> None:
        self.cache.put(
            CacheEntry(
                fingerprint=exact,
                plan=result.plan,
                cost=result.cost,
                required=result.required,
                certificate=getattr(result, "certificate", None),
            )
        )
        if template_key is not None:
            template_plan = parameterize_plan(result.plan, normalized.replacements)
            self.cache.put(
                CacheEntry(
                    fingerprint=template_key,
                    plan=template_plan,
                    cost=result.cost,
                    required=result.required,
                    parameterized=True,
                )
            )

    def _harvest(self, result: OptimizationResult) -> None:
        if not self.options.reuse_subplans:
            return
        if getattr(result, "memo", None) is None or result.root_group is None:
            return
        for seed in result.harvest_winners(
            max_plans=self.options.max_seeds_per_query
        ):
            self.subplans.add(seed, self.catalog)
