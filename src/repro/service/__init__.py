"""The optimizer service: cross-query plan caching and memo reuse (S17).

Fronts any :class:`~repro.search.Optimizer` with a fingerprint-keyed,
statistics-version-invalidated LRU plan cache, parameterized caching of
literal-normalized templates, and optional cross-query subplan seeding.
See :mod:`repro.service.service` for the full story and
``docs/plan-cache.md`` for a walkthrough.
"""

from repro.search.sharing import SharedPlan, SharingOptions, SharingReport
from repro.service.cache import CacheEntry, CacheStats, PlanCache
from repro.service.fingerprint import Fingerprint, fingerprint, table_dependencies
from repro.service.singleflight import SingleFlight
from repro.service.service import (
    BatchResult,
    ExecutedResult,
    OptimizerService,
    PreparedQuery,
    ServedResult,
    ServiceOptions,
    SubplanLibrary,
)

__all__ = [
    "CacheEntry",
    "CacheStats",
    "PlanCache",
    "Fingerprint",
    "fingerprint",
    "table_dependencies",
    "BatchResult",
    "ExecutedResult",
    "OptimizerService",
    "PreparedQuery",
    "ServedResult",
    "ServiceOptions",
    "SingleFlight",
    "SubplanLibrary",
    "SharedPlan",
    "SharingOptions",
    "SharingReport",
]
