"""Canonical plan-cache fingerprints.

A cached plan is the answer to the question "what is the cheapest plan
for *this* logical expression delivering *these* physical properties
under *these* statistics?" — so the cache key must pin down all three.
The fingerprint digests:

* the expression's canonical s-expression rendering (predicates print
  deterministically: conjunctions are flattened, deduplicated, and
  sorted by :func:`~repro.algebra.predicates.conjunction_of`);
* the required physical property vector;
* the selectivity bucket key, when the expression is a parameterized
  template (empty for exact entries);
* the per-table statistics versions of every stored table the
  expression reads, taken from the catalog's monotonic version counter.

Baking the statistics versions into the key means stale entries are
never *hit* — a stats mutation bumps the version, so the same query
re-fingerprints to a new key and misses.  The stale entries themselves
are swept out by :meth:`~repro.service.PlanCache.purge_stale`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Tuple

from repro.algebra.expressions import LogicalExpression
from repro.algebra.properties import PhysProps
from repro.catalog.catalog import Catalog

__all__ = ["Fingerprint", "table_dependencies", "fingerprint"]


@dataclass(frozen=True)
class Fingerprint:
    """A cache key: content digest plus the table versions it pins.

    ``digest``
        SHA-256 over the canonical rendering of (expression, properties,
        bucket key, table versions) — the dictionary key.
    ``tables``
        The stored tables the expression reads, sorted.
    ``versions``
        Each table's statistics version at fingerprint time, aligned
        with ``tables``.
    """

    digest: str
    tables: Tuple[str, ...]
    versions: Tuple[int, ...]

    def __str__(self) -> str:
        return self.digest[:12]


def table_dependencies(
    expression: LogicalExpression, catalog: Catalog
) -> Tuple[str, ...]:
    """The stored tables a logical expression reads, sorted and unique."""
    names = {
        node.args[0]
        for node in expression.walk()
        if node.operator == "get" and node.args and node.args[0] in catalog
    }
    return tuple(sorted(names))


def fingerprint(
    expression: LogicalExpression,
    props: PhysProps,
    catalog: Catalog,
    bucket_key: Tuple = (),
) -> Fingerprint:
    """Fingerprint a query (or parameterized template) for the plan cache."""
    tables = table_dependencies(expression, catalog)
    versions = tuple(catalog.table_version(name) for name in tables)
    payload = "\x1f".join(
        (
            expression.to_sexpr(),
            str(props),
            repr(bucket_key),
            repr(tuple(zip(tables, versions))),
        )
    )
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    return Fingerprint(digest=digest, tables=tables, versions=versions)
